// Package topology is the declarative scenario engine: a JSON file
// names nodes, directed links (each an independent multiplexing point
// with its own rate, buffer, and scheme-registry spec), flows with
// explicit multi-hop routes and (σ, ρ) envelopes, and a timeline of
// events (flow churn, link rate changes, failures). The engine gates
// every flow join at every traversed link through the paper's
// admission regions (Prop. 2 / eqs. 5–8), instantiates one
// network.Router per link through the scheme registry, drives the whole
// scenario on the deterministic event kernel, and verifies afterwards
// that the per-hop guarantees composed: admitted conformant flows see
// zero conformant loss at every hop and deliver their reserved rate.
//
// The paper analyses one output port; this package is the "backbone
// deployment" reading of its claim — if each port of a network runs the
// threshold scheme and admission control, the per-node guarantees hold
// end-to-end along any route.
package topology

import (
	"fmt"
	"sort"
	"strings"

	"bufqos/internal/packet"
	"bufqos/internal/scheme"
	"bufqos/internal/units"
)

// Link is one directed edge: an output port of node From towards node
// To, with its own scheduler/buffer-manager pair built from a
// scheme-registry spec.
type Link struct {
	// Name identifies the link in results and events; it defaults to
	// "from->to".
	Name string
	// From and To are node names. Nodes exist implicitly as endpoints.
	From, To string
	// Rate is the link capacity R.
	Rate units.Rate
	// Buffer is the output buffer B.
	Buffer units.Bytes
	// Headroom is the sharing headroom H (used by sharing managers).
	Headroom units.Bytes
	// PropDelay is the propagation delay towards To, in seconds.
	PropDelay float64
	// Spec is the scheme-registry spec, e.g. "fifo+threshold".
	Spec string
	// Queues optionally maps flow IDs to hybrid queues (required by
	// hybrid specs, ignored otherwise).
	Queues []int

	scheme *scheme.Scheme
}

// SourceKind selects how a flow generates traffic.
type SourceKind string

const (
	// SourceOnOff is the paper's Markov-modulated on-off source with
	// exponential on/off periods (peak rate, average rate, mean burst).
	SourceOnOff SourceKind = "onoff"
	// SourceGreedy saturates the flow's shaper, so the flow's output
	// tracks its (σ, ρ) envelope exactly — the right source for
	// verifying that reserved rates are delivered.
	SourceGreedy SourceKind = "greedy"
	// SourceCBR emits at the flow's average rate with constant spacing.
	SourceCBR SourceKind = "cbr"
	// SourceTCP is a closed-loop TCP Reno/NewReno sender: delivery
	// generates acknowledgements that travel the flow's reverse route
	// back to the source, which clocks its congestion window off them.
	// The topology must contain a reverse link for every hop of the
	// flow's route.
	SourceTCP SourceKind = "tcp"
)

// Flow is one end-to-end session: a declared (σ, ρ, peak) profile, an
// explicit route through the link graph, and a traffic source.
type Flow struct {
	// Name identifies the flow in results and events.
	Name string
	// ID is the dense flow index (position in Topology.Flows); packet
	// Flow fields and buffer-manager thresholds use it.
	ID int
	// Spec is the declared traffic contract.
	Spec packet.FlowSpec
	// RouteNodes is the node path, e.g. ["s0", "a", "b", "sink"].
	RouteNodes []string
	// Route is the resolved path as indices into Topology.Links.
	Route []int
	// ReverseRoute, filled by Validate for tcp flows only, holds the
	// reverse-direction link of each forward hop: ReverseRoute[h] is the
	// link To→From opposite Route[h]. Acknowledgements and drop
	// notifications accumulate its propagation delays on their way back
	// to the source.
	ReverseRoute []int
	// Source selects the generator kind.
	Source SourceKind
	// AvgRate and MeanBurst parameterize the on-off source (the cbr
	// source also sends at AvgRate). Both default from the spec:
	// AvgRate = ρ, MeanBurst = σ.
	AvgRate   units.Rate
	MeanBurst units.Bytes
	// PacketSize is the flow's packet size (default 500 bytes, the
	// paper's maximum packet size).
	PacketSize units.Bytes
	// Shaped routes the source through a leaky-bucket shaper with the
	// flow's profile, making its traffic conformant (Table 1 flows 0–5).
	Shaped bool
	// Class is the flow's service class for the class-aware online
	// schemes (cgreedy, classseg, lqf, semigreedy); higher = more
	// valuable. Packets carry it, and links running those schemes use
	// it for admission and service decisions. When every flow leaves it
	// 0, class-aware links derive classes from the declared profiles
	// instead.
	Class int
}

// EventKind enumerates the scenario timeline verbs.
type EventKind string

const (
	// EventJoin admits a flow (subject to admission control at every
	// traversed link) and starts its source.
	EventJoin EventKind = "join"
	// EventLeave stops a flow's source and releases its reservations.
	EventLeave EventKind = "leave"
	// EventRate changes a link's capacity for future transmissions.
	EventRate EventKind = "rate"
	// EventFail halts a link's service; arrivals still buffer and drop.
	EventFail EventKind = "fail"
	// EventRecover resumes a failed link.
	EventRecover EventKind = "recover"
)

// Event is one timeline entry. Flow events name a flow; link events
// name a link.
type Event struct {
	At   float64
	Kind EventKind
	Flow string
	Link string
	Rate units.Rate // for EventRate

	flow, link int // resolved indices
}

// Topology is a validated scenario: links, flows, and a timeline.
type Topology struct {
	// Name labels the scenario in reports.
	Name string
	// Description is free text carried from the JSON file.
	Description string
	Links       []Link
	Flows       []Flow
	// Events is the timeline, sorted by time (ties keep file order, so
	// a leave releasing capacity can precede a join reusing it).
	Events []Event
}

// LinkIndex returns the index of the named link, or -1.
func (t *Topology) LinkIndex(name string) int {
	for i := range t.Links {
		if t.Links[i].Name == name {
			return i
		}
	}
	return -1
}

// FlowIndex returns the index of the named flow, or -1.
func (t *Topology) FlowIndex(name string) int {
	for i := range t.Flows {
		if t.Flows[i].Name == name {
			return i
		}
	}
	return -1
}

// Specs returns the declared profiles of all flows, in ID order — the
// global flow population every link's buffer manager is built for.
func (t *Topology) Specs() []packet.FlowSpec {
	specs := make([]packet.FlowSpec, len(t.Flows))
	for i, f := range t.Flows {
		specs[i] = f.Spec
	}
	return specs
}

// JoinTime returns when flow id joins: its join event's time, or 0 when
// the timeline has none (flows join at the start by default). The
// second result is false when the flow never joins (a leave without a
// join is rejected by Validate, so this means "no events at all").
func (t *Topology) JoinTime(id int) (float64, bool) {
	for _, ev := range t.Events {
		if ev.Kind == EventJoin && ev.flow == id {
			return ev.At, true
		}
	}
	return 0, false
}

// Classes returns the explicit flow→class map, in ID order, or nil
// when no flow declares a class — the nil lets class-aware schemes fall
// back to their profile-derived classification.
func (t *Topology) Classes() []int {
	any := false
	classes := make([]int, len(t.Flows))
	for i, f := range t.Flows {
		classes[i] = f.Class
		if f.Class != 0 {
			any = true
		}
	}
	if !any {
		return nil
	}
	return classes
}

// schemeConfig assembles the scheme.Config for one link: the global
// flow population plus the link's physical parameters. seed
// differentiates randomized managers (RED) per link.
func (l *Link) schemeConfig(specs []packet.FlowSpec, classes []int, seed int64) scheme.Config {
	return scheme.Config{
		Specs:    specs,
		LinkRate: l.Rate,
		Buffer:   l.Buffer,
		Headroom: l.Headroom,
		QueueOf:  l.Queues,
		Classes:  classes,
		Seed:     seed,
	}
}

// Validate checks the whole scenario: link physics, scheme specs (each
// is trial-built against the full flow population), flow contracts,
// route resolution, and timeline consistency. It fills the resolved
// Route and event indices, sorts Events by time (stable), and applies
// defaults (link names, source parameters). A Topology must be
// validated before Run.
func (t *Topology) Validate() error {
	if len(t.Links) == 0 {
		return fmt.Errorf("topology %s: no links", t.Name)
	}
	if len(t.Flows) == 0 {
		return fmt.Errorf("topology %s: no flows", t.Name)
	}
	byEdge := map[string]int{}
	for i := range t.Links {
		l := &t.Links[i]
		if l.From == "" || l.To == "" {
			return fmt.Errorf("link %d: missing from/to node", i)
		}
		if l.From == l.To {
			return fmt.Errorf("link %d: self-loop at node %s", i, l.From)
		}
		if l.Name == "" {
			l.Name = l.From + "->" + l.To
		}
		if l.Rate <= 0 {
			return fmt.Errorf("link %s: non-positive rate %v", l.Name, l.Rate)
		}
		if l.Buffer <= 0 {
			return fmt.Errorf("link %s: non-positive buffer %v", l.Name, l.Buffer)
		}
		if l.Headroom < 0 || l.Headroom >= l.Buffer {
			return fmt.Errorf("link %s: headroom %v outside [0, buffer %v)", l.Name, l.Headroom, l.Buffer)
		}
		if l.PropDelay < 0 {
			return fmt.Errorf("link %s: negative propagation delay %v", l.Name, l.PropDelay)
		}
		if l.Spec == "" {
			l.Spec = "fifo+threshold"
		}
		sc, err := scheme.Parse(l.Spec)
		if err != nil {
			return fmt.Errorf("link %s: %w", l.Name, err)
		}
		l.scheme = sc
		edge := l.From + "->" + l.To
		if j, dup := byEdge[edge]; dup {
			return fmt.Errorf("links %s and %s duplicate edge %s", t.Links[j].Name, l.Name, edge)
		}
		byEdge[edge] = i
	}
	for i := range t.Links {
		if j := t.LinkIndex(t.Links[i].Name); j != i {
			return fmt.Errorf("duplicate link name %s", t.Links[i].Name)
		}
	}

	for i := range t.Flows {
		f := &t.Flows[i]
		f.ID = i
		if f.Name == "" {
			f.Name = fmt.Sprintf("flow%d", i)
		}
		if j := t.FlowIndex(f.Name); j != i {
			return fmt.Errorf("duplicate flow name %s", f.Name)
		}
		if err := f.Spec.Validate(); err != nil {
			return fmt.Errorf("flow %s: %w", f.Name, err)
		}
		if f.PacketSize == 0 {
			f.PacketSize = scheme.DefaultPacketSize
		}
		if f.PacketSize <= 0 {
			return fmt.Errorf("flow %s: non-positive packet size %v", f.Name, f.PacketSize)
		}
		if f.AvgRate == 0 {
			f.AvgRate = f.Spec.TokenRate
		}
		if f.MeanBurst == 0 {
			f.MeanBurst = f.Spec.BucketSize
		}
		switch f.Source {
		case "":
			f.Source = SourceOnOff
		case SourceOnOff, SourceGreedy, SourceCBR, SourceTCP:
		default:
			return fmt.Errorf("flow %s: unknown source kind %q (want onoff, greedy, cbr, or tcp)", f.Name, f.Source)
		}
		if f.Class < 0 {
			return fmt.Errorf("flow %s: negative class %d", f.Name, f.Class)
		}
		if f.Source == SourceGreedy && !f.Shaped {
			return fmt.Errorf("flow %s: a greedy source must be shaped (it saturates its leaky bucket)", f.Name)
		}
		if f.Source == SourceTCP && f.Shaped {
			return fmt.Errorf("flow %s: a tcp source cannot be shaped (its window, not a leaky bucket, paces it)", f.Name)
		}
		if f.Source == SourceOnOff {
			// NewOnOff panics on bad parameters; surface them as load
			// errors instead.
			switch {
			case f.Spec.PeakRate <= 0:
				return fmt.Errorf("flow %s: on-off source needs a positive peak rate", f.Name)
			case f.AvgRate <= 0 || f.AvgRate > f.Spec.PeakRate:
				return fmt.Errorf("flow %s: average rate %v outside (0, peak %v]", f.Name, f.AvgRate, f.Spec.PeakRate)
			case f.MeanBurst < f.PacketSize:
				return fmt.Errorf("flow %s: mean burst %v below packet size %v", f.Name, f.MeanBurst, f.PacketSize)
			}
		}
		if f.Shaped && f.Spec.BucketSize < f.PacketSize {
			return fmt.Errorf("flow %s: bucket %v below packet size %v, shaper would wedge", f.Name, f.Spec.BucketSize, f.PacketSize)
		}
		if len(f.RouteNodes) < 2 {
			return fmt.Errorf("flow %s: route needs at least two nodes, got %v", f.Name, f.RouteNodes)
		}
		f.Route = f.Route[:0]
		for h := 0; h+1 < len(f.RouteNodes); h++ {
			edge := f.RouteNodes[h] + "->" + f.RouteNodes[h+1]
			li, ok := byEdge[edge]
			if !ok {
				return fmt.Errorf("flow %s: no link %s on its route (nodes %s)",
					f.Name, edge, strings.Join(f.RouteNodes, " "))
			}
			f.Route = append(f.Route, li)
		}
		if f.Source == SourceTCP {
			// A closed-loop flow needs a reverse link opposite every
			// forward hop to carry its acknowledgements home.
			f.ReverseRoute = f.ReverseRoute[:0]
			for h := 0; h+1 < len(f.RouteNodes); h++ {
				edge := f.RouteNodes[h+1] + "->" + f.RouteNodes[h]
				li, ok := byEdge[edge]
				if !ok {
					return fmt.Errorf("flow %s: tcp source needs reverse link %s for its acknowledgements (nodes %s)",
						f.Name, edge, strings.Join(f.RouteNodes, " "))
				}
				f.ReverseRoute = append(f.ReverseRoute, li)
			}
		}
	}

	// Trial-build every link's scheme against the full flow population
	// so spec/population mismatches (hybrid queue maps, bad thresholds)
	// fail at load time, not mid-run.
	specs := t.Specs()
	classes := t.Classes()
	for i := range t.Links {
		l := &t.Links[i]
		if l.Queues != nil && len(l.Queues) != len(t.Flows) {
			return fmt.Errorf("link %s: queue map covers %d flows, topology has %d", l.Name, len(l.Queues), len(t.Flows))
		}
		cfg := l.schemeConfig(specs, classes, 0)
		cfg.Now = func() float64 { return 0 } // placeholder clock; the trial build is discarded
		if _, _, err := l.scheme.Build(cfg); err != nil {
			return fmt.Errorf("link %s: %w", l.Name, err)
		}
	}

	for i := range t.Events {
		ev := &t.Events[i]
		if ev.At < 0 {
			return fmt.Errorf("event %d: negative time %v", i, ev.At)
		}
		switch ev.Kind {
		case EventJoin, EventLeave:
			ev.flow = t.FlowIndex(ev.Flow)
			if ev.flow < 0 {
				return fmt.Errorf("event %d: unknown flow %q", i, ev.Flow)
			}
		case EventRate, EventFail, EventRecover:
			ev.link = t.LinkIndex(ev.Link)
			if ev.link < 0 {
				return fmt.Errorf("event %d: unknown link %q", i, ev.Link)
			}
			if ev.Kind == EventRate && ev.Rate <= 0 {
				return fmt.Errorf("event %d: non-positive rate %v for link %s", i, ev.Rate, ev.Link)
			}
		default:
			return fmt.Errorf("event %d: unknown kind %q", i, ev.Kind)
		}
	}
	sort.SliceStable(t.Events, func(i, j int) bool { return t.Events[i].At < t.Events[j].At })
	// A flow with no join event joins implicitly at t=0.
	joined := make([]bool, len(t.Flows))
	for i := range joined {
		if _, has := t.JoinTime(i); !has {
			joined[i] = true
		}
	}
	hasJoin := make([]bool, len(t.Flows))
	left := make([]bool, len(t.Flows))
	for i, ev := range t.Events {
		switch ev.Kind {
		case EventJoin:
			if hasJoin[ev.flow] {
				return fmt.Errorf("event %d: flow %s joins twice", i, ev.Flow)
			}
			hasJoin[ev.flow] = true
			joined[ev.flow] = true
		case EventLeave:
			if !joined[ev.flow] {
				return fmt.Errorf("event %d: flow %s leaves at t=%v before its join", i, ev.Flow, ev.At)
			}
			if left[ev.flow] {
				return fmt.Errorf("event %d: flow %s leaves twice", i, ev.Flow)
			}
			left[ev.flow] = true
		}
	}
	return nil
}
