package topology

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"bufqos/internal/packet"
	"bufqos/internal/units"
)

// TestClassRoundTrip: the per-flow class survives JSON parse → save →
// parse, and Classes() distinguishes "no flow classified" (nil) from an
// explicit map.
func TestClassRoundTrip(t *testing.T) {
	src := `{
		"name": "classy",
		"links": [{"from": "a", "to": "b", "rate_mbps": 10, "buffer_kb": 16, "scheme": "classseg?classes=2"}],
		"flows": [
			{"name": "gold", "route": ["a", "b"], "token_mbps": 2, "bucket_kb": 50, "source": "cbr", "class": 1},
			{"name": "dirt", "route": ["a", "b"], "token_mbps": 2, "bucket_kb": 50, "source": "cbr"}
		]
	}`
	topo, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if topo.Flows[0].Class != 1 || topo.Flows[1].Class != 0 {
		t.Fatalf("classes = %d, %d, want 1, 0", topo.Flows[0].Class, topo.Flows[1].Class)
	}
	if got := topo.Classes(); len(got) != 2 || got[0] != 1 || got[1] != 0 {
		t.Fatalf("Classes() = %v, want [1 0]", got)
	}
	var buf bytes.Buffer
	if err := Write(&buf, topo); err != nil {
		t.Fatal(err)
	}
	again, err := Parse(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, buf.String())
	}
	if again.Flows[0].Class != 1 || again.Flows[1].Class != 0 {
		t.Errorf("classes lost in round trip: %d, %d", again.Flows[0].Class, again.Flows[1].Class)
	}

	// All-zero classes collapse to nil, so class-aware schemes fall back
	// to their profile-derived classification.
	plain := twoHop(t)
	if got := plain.Classes(); got != nil {
		t.Errorf("unclassified topology: Classes() = %v, want nil", got)
	}
}

func TestValidateRejectsNegativeClass(t *testing.T) {
	topo := twoHop(t)
	topo.Flows[0].Class = -1
	if err := topo.Validate(); err == nil || !strings.Contains(err.Error(), "class") {
		t.Errorf("negative class: err = %v", err)
	}
}

// TestClassSegLinkProtectsHighClass: on an overloaded classseg link,
// the explicitly higher-class flow keeps (nearly) all its traffic while
// the lower class absorbs the loss — the topology's class assignment
// must reach the link's admission policy and the packets themselves.
func TestClassSegLinkProtectsHighClass(t *testing.T) {
	spec := packet.FlowSpec{
		PeakRate: units.MbitsPerSecond(10), TokenRate: units.MbitsPerSecond(2),
		BucketSize: units.KiloBytes(2),
	}
	topo := &Topology{
		Name: "classseg-link",
		Links: []Link{{
			From: "a", To: "b",
			Rate: units.MbitsPerSecond(10), Buffer: units.KiloBytes(16),
			Spec: "classseg?classes=2",
		}},
		Flows: []Flow{
			{Name: "gold", Spec: spec, RouteNodes: []string{"a", "b"}, Source: SourceCBR,
				AvgRate: units.MbitsPerSecond(8), Class: 1},
			{Name: "dirt", Spec: spec, RouteNodes: []string{"a", "b"}, Source: SourceCBR,
				AvgRate: units.MbitsPerSecond(8)},
		},
	}
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), topo, Options{Duration: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	gold, dirt := res.Flows[0], res.Flows[1]
	if gold.Offered.Packets == 0 || dirt.Offered.Packets == 0 {
		t.Fatalf("sources idle (rejections %+v): %+v %+v", res.Rejections, gold.Offered, dirt.Offered)
	}
	goldLoss := 1 - float64(gold.Delivered.Packets)/float64(gold.Offered.Packets)
	dirtLoss := 1 - float64(dirt.Delivered.Packets)/float64(dirt.Offered.Packets)
	// 16 Mb/s offered into 10 Mb/s: ~37% aggregate loss, all of which
	// class-segregated pushout should push onto the low class.
	if goldLoss > 0.01 {
		t.Errorf("high-class flow lost %.1f%% of its packets", 100*goldLoss)
	}
	if dirtLoss < 0.2 {
		t.Errorf("low-class flow lost only %.1f%%, preemption not biting", 100*dirtLoss)
	}
}
