package topology

import (
	"context"
	"fmt"
	"reflect"
	"testing"
)

// shardCases returns the equivalence corpus: every shipped scenario
// file plus a generated 64-link fat tree.
func shardCases(t *testing.T) map[string]*Topology {
	t.Helper()
	cases := map[string]*Topology{}
	for _, name := range []string{"tandem3", "parkinglot", "churn"} {
		tp, err := Load("../../topologies/" + name + ".json")
		if err != nil {
			t.Fatalf("load %s: %v", name, err)
		}
		cases[name] = tp
	}
	gen, err := Generate("fattree?flows=96,seed=5")
	if err != nil {
		t.Fatal(err)
	}
	if len(gen.Links) != 64 {
		t.Fatalf("generated fat tree has %d links, want 64", len(gen.Links))
	}
	cases["fattree64"] = gen
	return cases
}

// TestShardEquivalence is the tentpole contract: for every scenario,
// every shard count produces a Result bit-identical to the single-shard
// run — same per-flow delay extrema, same per-link counters, same event
// total, same Verify outcome.
func TestShardEquivalence(t *testing.T) {
	for name, tp := range shardCases(t) {
		t.Run(name, func(t *testing.T) {
			opts := Options{Duration: 2, Seed: 3}
			base, err := Run(context.Background(), tp, opts)
			if err != nil {
				t.Fatal(err)
			}
			baseVerify := verifySummary(tp, &base)
			for _, shards := range []int{2, 4, 7} {
				o := opts
				o.Shards = shards
				res, err := Run(context.Background(), tp, o)
				if err != nil {
					t.Fatalf("shards=%d: %v", shards, err)
				}
				// MaxDelay is the sharpest determinism probe: one
				// reordered or re-rounded hand-off anywhere shifts some
				// packet's delivery instant and perturbs an extremum.
				for fi := range base.Flows {
					if res.Flows[fi].MaxDelay != base.Flows[fi].MaxDelay {
						t.Errorf("shards=%d: flow %s MaxDelay %v != %v",
							shards, base.Flows[fi].Name, res.Flows[fi].MaxDelay, base.Flows[fi].MaxDelay)
					}
				}
				if res.Events != base.Events {
					t.Errorf("shards=%d: %d events, want %d", shards, res.Events, base.Events)
				}
				if !reflect.DeepEqual(base, res) {
					t.Errorf("shards=%d: Result differs from shards=1", shards)
				}
				if v := verifySummary(tp, &res); !reflect.DeepEqual(v, baseVerify) {
					t.Errorf("shards=%d: Verify outcome differs:\n%v\nwant:\n%v", shards, v, baseVerify)
				}
			}
		})
	}
}

// TestShardEquivalenceSkipLinkFlows checks that the light result mode
// changes only the per-link flow tables: flow outcomes and link totals
// stay bit-identical, across shard counts.
func TestShardEquivalenceSkipLinkFlows(t *testing.T) {
	tp, err := Generate("random?links=32,flows=64,seed=11")
	if err != nil {
		t.Fatal(err)
	}
	full, err := Run(context.Background(), tp, Options{Duration: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 4} {
		light, err := Run(context.Background(), tp, Options{Duration: 1, Seed: 2, Shards: shards, SkipLinkFlows: true})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if !reflect.DeepEqual(light.Flows, full.Flows) {
			t.Errorf("shards=%d: flow results differ from full mode", shards)
		}
		for li := range full.Links {
			if light.Links[li].Flows != nil {
				t.Errorf("shards=%d: link %s has per-flow tables despite SkipLinkFlows", shards, full.Links[li].Name)
			}
			if light.Links[li].Totals != full.Links[li].Totals {
				t.Errorf("shards=%d: link %s totals differ from full mode", shards, full.Links[li].Name)
			}
		}
	}
}

// verifySummary flattens Verify's assertions into comparable strings.
func verifySummary(tp *Topology, res *Result) []string {
	var out []string
	for _, a := range Verify(tp, res) {
		out = append(out, fmt.Sprintf("%s|%s|%v", a.Name, a.Detail, a.Err))
	}
	return out
}
