package topology

import (
	"context"
	"fmt"
	"sort"

	"bufqos/internal/core"
	"bufqos/internal/metrics"
	"bufqos/internal/network"
	"bufqos/internal/packet"
	"bufqos/internal/sched"
	"bufqos/internal/scheme"
	"bufqos/internal/shard"
	"bufqos/internal/sim"
	"bufqos/internal/source"
	"bufqos/internal/stats"
	"bufqos/internal/units"
)

// admissionPlan is the precomputed outcome of every admission decision
// of a scenario. Admission depends only on the ordered join/leave
// sequence and the declared FlowSpecs — never on simulated traffic — so
// it can be replayed sequentially before the run starts. That makes the
// outcomes (and the Rejections order) independent of how the links are
// partitioned across shards.
type admissionPlan struct {
	admitted []bool
	joinAt   []float64
	leaveAt  []float64
	left     []bool
	// rejections are in decision order: implicit joins in flow order at
	// t=0, then timeline events in their sorted order — exactly the
	// order a single event kernel dispatches them in.
	rejections []Rejection
}

// planAdmission replays the scenario's join/leave sequence through the
// paper's admission regions.
func planAdmission(t *Topology, duration float64) *admissionPlan {
	p := &admissionPlan{
		admitted: make([]bool, len(t.Flows)),
		joinAt:   make([]float64, len(t.Flows)),
		leaveAt:  make([]float64, len(t.Flows)),
		left:     make([]bool, len(t.Flows)),
	}
	for fi := range p.leaveAt {
		p.leaveAt[fi] = duration
	}
	ctrl := make([]*core.SerialAdmitter, len(t.Links))
	for li := range t.Links {
		l := &t.Links[li]
		ctrl[li] = core.NewSerialAdmitter(discipline(l), l.Rate, l.Buffer)
	}
	join := func(fi int, at float64) {
		f := &t.Flows[fi]
		p.joinAt[fi] = at
		for _, li := range f.Route {
			if reason := ctrl[li].Check(f.Spec); reason != core.Accepted {
				p.rejections = append(p.rejections, Rejection{
					Flow:   f.Name,
					Link:   t.Links[li].Name,
					At:     at,
					Reason: reason,
				})
				return
			}
		}
		for _, li := range f.Route {
			ctrl[li].Admit(f.Spec)
		}
		p.admitted[fi] = true
	}
	for fi := range t.Flows {
		if _, has := t.JoinTime(fi); !has {
			join(fi, 0)
		}
	}
	for _, ev := range t.Events {
		switch ev.Kind {
		case EventJoin:
			join(ev.flow, ev.At)
		case EventLeave:
			p.left[ev.flow] = true
			p.leaveAt[ev.flow] = ev.At
			if !p.admitted[ev.flow] {
				continue
			}
			for _, li := range t.Flows[ev.flow].Route {
				ctrl[li].Release(t.Flows[ev.flow].Spec)
			}
		}
	}
	return p
}

// crossingKind distinguishes what a shard hand-off carries: a data
// packet entering its next link, or closed-loop feedback (an
// acknowledgement or a drop notification) returning to a source.
type crossingKind int8

const (
	crossData crossingKind = iota
	crossAck
	crossDrop
)

// tcpAckSize is the size of the acknowledgement packets a closed-loop
// flow's receiver generates (a TCP/IP header with no payload).
const tcpAckSize units.Bytes = 40

// crossing is one packet handed between shards at a window barrier.
type crossing struct {
	p       *packet.Packet
	dstLink int32
	// srcLink, kind, and flow (global id) break residual (Time, Sched)
	// ties deterministically.
	srcLink int32
	kind    crossingKind
	flow    int32
}

// engineLink is one link's data plane plus its shard placement.
type engineLink struct {
	topoIdx int
	shard   int
	link    *sched.Link
	col     *stats.Collector
	// flows maps the link's data-plane flow index to the global flow id.
	// Nil when the link runs with global ids (population-sensitive
	// scheme, or no traversing flows).
	flows []int32
	// forwarded counts packets handed onward (next hop or delivery),
	// indexed like the data plane.
	forwarded []int64
	prop      float64
}

// engineShard is one shard's kernel and its per-window outbox.
type engineShard struct {
	s        *sim.Simulator
	delivery *network.Delivery
	outbox   []shard.Item[crossing]
}

// engine executes one scenario across 1..N shards with bit-identical
// results. The single-shard case runs through the same machinery (one
// worker, an always-empty outbox), so there is exactly one semantics.
type engine struct {
	topo   *Topology
	opts   Options
	ft     *FlowTable
	plan   *admissionPlan
	part   shard.Partition
	edges  []shard.Edge
	links  []*engineLink
	shards []*engineShard
	// hopEntry is aligned with FlowTable.RouteLink: the data-plane flow
	// id a packet must carry at that hop (link-local, or global for
	// unmapped links).
	hopEntry []int32
	sources  []stopper
	// feedback holds each closed-loop flow's reverse-direction surface
	// (nil for open-loop flows and until the source starts); tcps keeps
	// the concrete senders for retransmission statistics.
	feedback []source.Feedback
	tcps     []*source.TCP
	// ackDelay is each flow's full reverse-path propagation delay;
	// dropDelay, aligned with FlowTable.RouteLink, is the partial
	// reverse delay from that hop's entry back to the source. Both are
	// zero-filled for open-loop flows.
	ackDelay  []float64
	dropDelay []float64
	res       *Result
}

// buildEdges derives the partitioner's input from route adjacency: one
// edge per ordered pair of consecutive links on any route, weighted by
// how many flows make that hop, with lookahead = upstream propagation
// delay. Closed-loop (tcp) flows additionally contribute feedback
// edges towards their first link — one from the last link with the
// full reverse-path delay (acknowledgements) and one per later hop
// with the partial reverse delay (drop notifications) — so the
// partitioner either colocates a zero-delay feedback path or the
// synchronization window shrinks to cover it. Coinciding edges merge
// by summed weight and minimum lookahead. The edge list is sorted so
// the partition is deterministic.
func buildEdges(t *Topology, ft *FlowTable) []shard.Edge {
	type key struct{ a, b int32 }
	type info struct {
		weight int64
		look   float64
	}
	edges := map[key]info{}
	add := func(a, b int32, look float64, w int64) {
		if a == b {
			return
		}
		k := key{a, b}
		e, ok := edges[k]
		if !ok || look < e.look {
			e.look = look
		}
		e.weight += w
		edges[k] = e
	}
	for fi := range t.Flows {
		off, end := ft.RouteOff[fi], ft.RouteOff[fi+1]
		for i := off; i+1 < end; i++ {
			a := ft.RouteLink[i]
			add(a, ft.RouteLink[i+1], t.Links[a].PropDelay, 1)
		}
		f := &t.Flows[fi]
		if f.Source != SourceTCP {
			continue
		}
		first := int32(f.Route[0])
		add(int32(f.Route[len(f.Route)-1]), first, reverseDelay(t, f, len(f.Route)), 1)
		for h := 1; h < len(f.Route); h++ {
			add(int32(f.Route[h]), first, reverseDelay(t, f, h), 1)
		}
	}
	keys := make([]key, 0, len(edges))
	for k := range edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].a != keys[j].a {
			return keys[i].a < keys[j].a
		}
		return keys[i].b < keys[j].b
	})
	out := make([]shard.Edge, 0, len(keys))
	for _, k := range keys {
		out = append(out, shard.Edge{
			From:      int(k.a),
			To:        int(k.b),
			Lookahead: edges[k].look,
			Weight:    edges[k].weight,
		})
	}
	return out
}

// reverseDelay is the propagation delay feedback generated at the
// entry of hop h (or at delivery, h = len(Route)) accumulates on its
// way back to the source: the sum of the first h reverse links' props.
// Acknowledgements and drop notifications are modelled as delay-only —
// they never queue in reverse-direction buffers, the standard
// simplification when the reverse path is uncongested.
func reverseDelay(t *Topology, f *Flow, h int) float64 {
	d := 0.0
	for j := 0; j < h; j++ {
		d += t.Links[f.ReverseRoute[j]].PropDelay
	}
	return d
}

// newEngine plans and wires one run. It does everything up to (not
// including) starting the clock.
func newEngine(t *Topology, opts Options) (*engine, error) {
	e := &engine{
		topo:    t,
		opts:    opts,
		ft:      NewFlowTable(t),
		sources: make([]stopper, len(t.Flows)),
		res: &Result{
			Topology: t.Name,
			Duration: opts.Duration,
			Seed:     opts.Seed,
			Flows:    make([]FlowResult, len(t.Flows)),
		},
	}
	e.plan = planAdmission(t, opts.Duration)
	e.res.Rejections = e.plan.rejections

	// Closed-loop bookkeeping: reverse-path delays per flow and per
	// hop, and which links carry tcp flows (those need drop hooks).
	e.feedback = make([]source.Feedback, len(t.Flows))
	e.tcps = make([]*source.TCP, len(t.Flows))
	e.ackDelay = make([]float64, len(t.Flows))
	e.dropDelay = make([]float64, len(e.ft.RouteLink))
	hasTCP := make([]bool, len(t.Links))
	for fi := range t.Flows {
		f := &t.Flows[fi]
		if f.Source != SourceTCP {
			continue
		}
		e.ackDelay[fi] = reverseDelay(t, f, len(f.Route))
		for h, li := range f.Route {
			hasTCP[li] = true
			e.dropDelay[e.ft.RouteOff[fi]+int32(h)] = reverseDelay(t, f, h)
		}
	}

	nshards := opts.Shards
	if nshards < 1 {
		nshards = 1
	}
	weight := make([]int64, len(t.Links))
	for li := range t.Links {
		weight[li] = int64(len(e.ft.LinkFlows[li]))
	}
	e.edges = buildEdges(t, e.ft)
	e.part = shard.Compute(len(t.Links), nshards, e.edges, weight)

	deg := degradedLinks(t)
	for fi := range t.Flows {
		fr := &e.res.Flows[fi]
		fr.Name = t.Flows[fi].Name
		fr.Admitted = e.plan.admitted[fi]
		fr.JoinAt = e.plan.joinAt[fi]
		fr.LeaveAt = e.plan.leaveAt[fi]
		fr.Left = e.plan.left[fi]
		for _, li := range t.Flows[fi].Route {
			if deg[li] {
				fr.Degraded = true
			}
		}
	}

	// Per-shard kernels, pre-sized: each source holds at most a few
	// pending events, each link one transmission plus one propagation.
	e.shards = make([]*engineShard, e.part.N)
	ownedHops := make([]int, e.part.N)
	for li := range t.Links {
		ownedHops[e.part.Assign[li]] += len(e.ft.LinkFlows[li])
	}
	for i := range e.shards {
		s := sim.New()
		if opts.Metrics != nil {
			s.Instrument(opts.Metrics)
		}
		s.Reserve(4*ownedHops[i] + 256)
		e.shards[i] = &engineShard{
			s:        s,
			delivery: network.NewDeliveryLight(s, len(t.Flows)),
		}
	}

	specs := t.Specs()
	classes := t.Classes()
	e.links = make([]*engineLink, len(t.Links))
	for li := range t.Links {
		l := &t.Links[li]
		sh := e.part.Assign[li]
		es := e.shards[sh]
		locals := e.ft.LinkFlows[li]
		seed := sim.DeriveSeed(opts.Seed, linkSeedBase+li)
		var cfg scheme.Config
		var flows []int32
		if l.scheme.PopulationSensitive() || len(locals) == 0 {
			// Population-sensitive schemes (and links no flow traverses,
			// whose builders reject an empty population) keep the global
			// flow indexing.
			cfg = l.schemeConfig(specs, classes, seed)
		} else {
			localSpecs := make([]packet.FlowSpec, len(locals))
			var localClasses []int
			if classes != nil {
				localClasses = make([]int, len(locals))
			}
			for k, g := range locals {
				localSpecs[k] = specs[g]
				if localClasses != nil {
					localClasses[k] = classes[g]
				}
			}
			cfg = scheme.Config{
				Specs:    localSpecs,
				LinkRate: l.Rate,
				Buffer:   l.Buffer,
				Headroom: l.Headroom,
				Classes:  localClasses,
				Seed:     seed,
			}
			flows = locals
		}
		cfg.Now = es.s.Now
		nflows := len(cfg.Specs)
		col := stats.NewCollector(nflows, 0)
		mgr, sc, err := l.scheme.Build(cfg)
		if err != nil {
			return nil, fmt.Errorf("topology %s: link %s: %w", t.Name, l.Name, err)
		}
		lk := sched.NewLink(es.s, l.Rate, sc, mgr, col)
		if opts.Metrics != nil {
			lk.Instrument(opts.Metrics, l.Spec)
		}
		el := &engineLink{
			topoIdx:   li,
			shard:     sh,
			link:      lk,
			col:       col,
			flows:     flows,
			forwarded: make([]int64, nflows),
			prop:      l.PropDelay,
		}
		lk.OnDepart = e.forwardFrom(el)
		if hasTCP[li] {
			lk.OnDrop = e.dropFrom(el)
		}
		e.links[li] = el
	}

	// Register each admitted tcp flow's acknowledgement generator on
	// the delivery sink of its last link's shard: every delivered data
	// segment is answered with a cumulative ACK that travels the
	// reverse path's accumulated delay back to the source.
	for fi := range t.Flows {
		if t.Flows[fi].Source != SourceTCP || !e.plan.admitted[fi] {
			continue
		}
		fi := fi
		route := t.Flows[fi].Route
		last := e.links[route[len(route)-1]]
		els := e.shards[last.shard]
		els.delivery.SetAcker(fi, tcpAckSize, func(ap *packet.Packet) {
			e.sendFeedback(els, last, fi, ap, crossAck, e.ackDelay[fi])
		})
	}

	// Data-plane flow ids per route hop.
	e.hopEntry = make([]int32, len(e.ft.RouteLink))
	for fi := range t.Flows {
		for i := e.ft.RouteOff[fi]; i < e.ft.RouteOff[fi+1]; i++ {
			if e.links[e.ft.RouteLink[i]].flows == nil {
				e.hopEntry[i] = int32(fi)
			} else {
				e.hopEntry[i] = e.ft.RouteLocal[i]
			}
		}
	}

	// Schedule the scenario in the plan's decision order, each action on
	// the shard owning its flow's first link (sources) or its link.
	for fi := range t.Flows {
		if _, has := t.JoinTime(fi); !has && e.plan.admitted[fi] {
			fi := fi
			es := e.shardOfFlow(fi)
			es.s.At(0, func() { e.startSource(fi) })
		}
	}
	for i := range t.Events {
		ev := t.Events[i]
		switch ev.Kind {
		case EventJoin:
			if !e.plan.admitted[ev.flow] {
				continue
			}
			es := e.shardOfFlow(ev.flow)
			es.s.At(ev.At, func() { e.startSource(ev.flow) })
		case EventLeave:
			if !e.plan.admitted[ev.flow] {
				continue
			}
			es := e.shardOfFlow(ev.flow)
			es.s.At(ev.At, func() {
				if src := e.sources[ev.flow]; src != nil {
					src.Stop()
				}
			})
		case EventRate:
			el := e.links[ev.link]
			e.shards[el.shard].s.At(ev.At, func() { el.link.SetRate(ev.Rate) })
		case EventFail:
			el := e.links[ev.link]
			e.shards[el.shard].s.At(ev.At, func() { el.link.SetDown(true) })
		case EventRecover:
			el := e.links[ev.link]
			e.shards[el.shard].s.At(ev.At, func() { el.link.SetDown(false) })
		}
	}
	return e, nil
}

func (e *engine) shardOfFlow(fi int) *engineShard {
	return e.shards[e.part.Assign[e.topo.Flows[fi].Route[0]]]
}

// forwardFrom builds el's OnDepart hook: translate the departing
// packet's data-plane id back to the global flow, advance the hop, and
// hand the packet to the next link (same shard: direct or After; other
// shard: outbox item for the barrier exchange) or the delivery sink
// (always local — a flow terminates on its last link's shard).
func (e *engine) forwardFrom(el *engineLink) func(p *packet.Packet) {
	es := e.shards[el.shard]
	ft := e.ft
	return func(p *packet.Packet) {
		el.forwarded[p.Flow]++
		g := int32(p.Flow)
		if el.flows != nil {
			g = el.flows[p.Flow]
		}
		idx := ft.RouteOff[g] + p.Hop + 1
		if idx >= ft.RouteOff[g+1] {
			p.Flow = int(g)
			if el.prop == 0 {
				p.Arrived = es.s.Now()
				es.delivery.Receive(p)
				return
			}
			es.s.After(el.prop, func() {
				p.Arrived = es.s.Now()
				es.delivery.Receive(p)
			})
			return
		}
		p.Hop++
		p.Flow = int(e.hopEntry[idx])
		dst := e.links[ft.RouteLink[idx]]
		if dst.shard == el.shard {
			if el.prop == 0 {
				p.Arrived = es.s.Now()
				dst.link.Receive(p)
				return
			}
			es.s.After(el.prop, func() {
				p.Arrived = es.s.Now()
				dst.link.Receive(p)
			})
			return
		}
		// The partitioner colocates zero-lookahead edges, so a crossing
		// always has prop > 0 and lands at least one window ahead.
		now := es.s.Now()
		es.outbox = append(es.outbox, shard.Item[crossing]{
			Dst:   dst.shard,
			Time:  now + el.prop,
			Sched: now,
			Load:  crossing{p: p, dstLink: int32(dst.topoIdx), srcLink: int32(el.topoIdx), flow: g},
		})
	}
}

// dropFrom builds el's OnDrop hook: when a buffer manager rejects a
// closed-loop flow's data segment, notify the source after the partial
// reverse-path delay from the dropping hop. Open-loop flows sharing
// the link are ignored (no feedback surface).
func (e *engine) dropFrom(el *engineLink) func(p *packet.Packet) {
	es := e.shards[el.shard]
	ft := e.ft
	return func(p *packet.Packet) {
		g := int32(p.Flow)
		if el.flows != nil {
			g = el.flows[p.Flow]
		}
		if e.feedback[g] == nil {
			return
		}
		e.sendFeedback(es, el, int(g), p, crossDrop, e.dropDelay[ft.RouteOff[g]+p.Hop])
	}
}

// sendFeedback routes one reverse-direction notification (ACK or drop)
// generated on shard src at link from back to flow fi's source, after
// the given propagation delay. Same shard: direct call (zero delay,
// matching the data path's same-event forwarding) or After; other
// shard: an outbox item for the window barrier, stamped exactly like a
// data crossing so the hand-off instant is bit-identical to the
// single-shard After. A cross-shard item always has delay ≥ the
// synchronization window, because the feedback edge's lookahead is
// this delay (zero-delay feedback paths are colocated by the
// partitioner).
func (e *engine) sendFeedback(src *engineShard, from *engineLink, fi int, p *packet.Packet, kind crossingKind, delay float64) {
	first := e.topo.Flows[fi].Route[0]
	dst := e.part.Assign[first]
	if e.shards[dst] == src {
		if delay == 0 {
			e.deliverFeedback(fi, kind, p)
			return
		}
		src.s.After(delay, func() { e.deliverFeedback(fi, kind, p) })
		return
	}
	now := src.s.Now()
	src.outbox = append(src.outbox, shard.Item[crossing]{
		Dst:   dst,
		Time:  now + delay,
		Sched: now,
		Load: crossing{
			p:       p,
			dstLink: int32(first),
			srcLink: int32(from.topoIdx),
			kind:    kind,
			flow:    int32(fi),
		},
	})
}

// deliverFeedback hands one notification to the flow's source (a
// no-op for sources that stopped or never started).
func (e *engine) deliverFeedback(fi int, kind crossingKind, p *packet.Packet) {
	fb := e.feedback[fi]
	if fb == nil {
		return
	}
	if kind == crossAck {
		fb.OnAck(p)
	} else {
		fb.OnDrop(p)
	}
}

// startSource assembles one admitted flow's generator chain into its
// first hop: source → (shaper) → offered counter → hop-0 localizer →
// link.
func (e *engine) startSource(fi int) {
	f := &e.topo.Flows[fi]
	el := e.links[f.Route[0]]
	es := e.shards[el.shard]
	entryID := int(e.hopEntry[e.ft.RouteOff[fi]])
	class := int32(f.Class)
	localize := source.SinkFunc(func(p *packet.Packet) {
		p.Hop = 0
		p.Flow = entryID
		p.Class = class
		el.link.Receive(p)
	})
	entry := source.Sink(countingSink{inner: localize, count: &e.res.Flows[fi].Offered})
	if f.Shaped {
		entry = source.NewShaper(es.s, f.Spec, entry)
	}
	var src stopper
	switch f.Source {
	case SourceTCP:
		// Pace emissions at the peak rate (or the first link's rate):
		// the congestion window, clocked by returning ACKs, does the
		// real rate control.
		pace := f.Spec.PeakRate
		if pace <= 0 {
			pace = e.topo.Links[f.Route[0]].Rate
		}
		tcp := source.NewTCP(es.s, source.TCPConfig{
			Flow:        fi,
			SegmentSize: f.PacketSize,
			PaceRate:    pace,
		}, entry)
		e.feedback[fi] = tcp
		e.tcps[fi] = tcp
		src = tcp
	case SourceGreedy:
		// Saturate the shaper at the peak rate (or the first link's rate
		// when no peak is declared): the shaper output then follows the
		// (σ, ρ) envelope exactly.
		feed := f.Spec.PeakRate
		if feed <= 0 {
			feed = e.topo.Links[f.Route[0]].Rate
		}
		src = source.NewSaturating(es.s, fi, f.PacketSize, feed, entry)
	case SourceCBR:
		src = source.NewCBR(es.s, fi, f.PacketSize, f.AvgRate, entry)
	default: // SourceOnOff, enforced by Validate
		rng := sim.NewRand(sim.DeriveSeed(e.opts.Seed, fi))
		src = source.NewOnOff(es.s, rng, source.OnOffConfig{
			Flow:       fi,
			PacketSize: f.PacketSize,
			PeakRate:   f.Spec.PeakRate,
			AvgRate:    f.AvgRate,
			MeanBurst:  f.MeanBurst,
		}, entry)
	}
	e.sources[fi] = src
	src.Start()
}

// run drives the shards through the conservative window schedule and
// collects the results.
func (e *engine) run(ctx context.Context) (Result, error) {
	cfg := shard.Config{
		Shards:  e.part.N,
		Window:  e.part.Window,
		Horizon: e.opts.Duration,
		// Cap the window so a single-shard (or long-lookahead) run stays
		// cancellable, mirroring the 64-chunk pattern the experiment
		// runner uses. Window subdivision never changes results.
		MinWindows: 64,
	}
	runFn := func(i int, limit float64, final bool) []shard.Item[crossing] {
		es := e.shards[i]
		es.outbox = es.outbox[:0]
		if final {
			es.s.RunUntil(limit)
		} else {
			es.s.RunBefore(limit)
		}
		return es.outbox
	}
	inject := func(d int, items []shard.Item[crossing]) {
		es := e.shards[d]
		for _, it := range items {
			switch load := it.Load; load.kind {
			case crossData:
				p, dst := load.p, e.links[load.dstLink]
				es.s.AtStamped(it.Time, it.Sched, func() {
					p.Arrived = es.s.Now()
					dst.link.Receive(p)
				})
			default: // crossAck, crossDrop: feedback to the source
				es.s.AtStamped(it.Time, it.Sched, func() {
					e.deliverFeedback(int(load.flow), load.kind, load.p)
				})
			}
		}
	}
	tieLess := func(a, b crossing) bool {
		if a.srcLink != b.srcLink {
			return a.srcLink < b.srcLink
		}
		if a.kind != b.kind {
			return a.kind < b.kind
		}
		if a.flow != b.flow {
			return a.flow < b.flow
		}
		return a.p.Seq < b.p.Seq
	}
	st, err := shard.Run(ctx, cfg, runFn, inject, tieLess)
	if err != nil {
		return Result{}, err
	}
	e.report(st)
	e.collect()
	return *e.res, nil
}

// report publishes per-shard synchronization metrics.
func (e *engine) report(st shard.Stats) {
	reg := e.opts.Metrics
	if reg == nil {
		return
	}
	reg.Counter("shard.windows").Add(int64(st.Windows))
	for i, es := range e.shards {
		reg.Counter(fmt.Sprintf("shard.events.%d", i)).Add(int64(es.s.Steps()))
		reg.Counter(fmt.Sprintf("shard.null_bundles.%d", i)).Add(st.NullBundles[i])
		reg.Counter(fmt.Sprintf("shard.exchanged.%d", i)).Add(st.Exchanged[i])
		reg.Counter(fmt.Sprintf("shard.stalls.%d", i)).Add(st.Stalls[i])
	}
	// Lookahead histogram over the realized cut, in microseconds.
	h := reg.Histogram("shard.cut_lookahead_us", metrics.ExpBuckets(1, 4, 12))
	for _, ed := range e.edges {
		if e.part.Assign[ed.From] != e.part.Assign[ed.To] {
			h.Observe(ed.Lookahead * 1e6)
		}
	}
}

// collect folds the per-shard collectors and delivery sinks into the
// Result.
func (e *engine) collect() {
	t := e.topo
	for li := range t.Links {
		el := e.links[li]
		lr := LinkResult{Name: t.Links[li].Name}
		n := el.col.NumFlows()
		for k := 0; k < n; k++ {
			fs := el.col.Flow(k)
			addCounter(&lr.Totals.Offered, fs.Offered.Total())
			addCounter(&lr.Totals.Dropped, fs.Dropped.Total())
			addCounter(&lr.Totals.ConformantDropped, fs.Dropped.Conformant)
			addCounter(&lr.Totals.Departed, fs.Departed.Total())
			lr.Totals.Forwarded += el.forwarded[k]
		}
		if !e.opts.SkipLinkFlows {
			lr.Flows = make([]LinkFlow, len(t.Flows))
			for k := 0; k < n; k++ {
				g := k
				if el.flows != nil {
					g = int(el.flows[k])
				}
				fs := el.col.Flow(k)
				lr.Flows[g] = LinkFlow{
					Offered:           fs.Offered.Total(),
					Dropped:           fs.Dropped.Total(),
					ConformantDropped: fs.Dropped.Conformant,
					Departed:          fs.Departed.Total(),
					Forwarded:         el.forwarded[k],
				}
			}
		}
		lr.Utilization = lr.Totals.Departed.Bytes.Bits() / (t.Links[li].Rate.BitsPerSecond() * e.opts.Duration)
		e.res.Links = append(e.res.Links, lr)
	}
	for fi := range t.Flows {
		fr := &e.res.Flows[fi]
		// A flow delivers on exactly one shard: its last link's.
		route := t.Flows[fi].Route
		d := e.shards[e.part.Assign[route[len(route)-1]]].delivery
		fr.Delivered = stats.Counter{
			Packets: d.Packets(fi),
			Bytes:   d.Bytes(fi),
		}
		active := fr.LeaveAt - fr.JoinAt
		if active > 0 {
			fr.Throughput = units.Rate(fr.Delivered.Bytes.Bits() / active)
		}
		if tcp := e.tcps[fi]; tcp != nil {
			fr.Goodput = d.Goodput(fi)
			if active > 0 {
				fr.GoodputRate = units.Rate(fr.Goodput.Bytes.Bits() / active)
			}
			fr.Retransmits = tcp.Retransmits()
		}
		fr.MeanDelay = d.MeanDelay(fi)
		fr.MaxDelay = d.MaxDelay(fi)
	}
	for _, es := range e.shards {
		e.res.Events += es.s.Steps()
	}
}

// addCounter folds one counter into an aggregate.
func addCounter(dst *stats.Counter, o stats.Counter) {
	dst.Packets += o.Packets
	dst.Bytes += o.Bytes
}
