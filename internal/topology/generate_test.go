package topology

import (
	"context"
	"reflect"
	"strings"
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	for _, spec := range []string{"line", "fattree", "random?links=40,flows=100,seed=9"} {
		a, err := Generate(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		b, err := Generate(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: two generations differ", spec)
		}
	}
}

func TestGenerateShapes(t *testing.T) {
	cases := []struct {
		spec         string
		links, flows int
	}{
		{"line?links=10,flows=5", 10, 5},
		{"fattree", 64, 64}, // k=4: 16 cables in pods + 16 to cores, ×2 directions
		{"fattree?k=2,flows=7", 8, 7},
		{"random?links=30,flows=12", 30, 12},
	}
	for _, c := range cases {
		tp, err := Generate(c.spec)
		if err != nil {
			t.Fatalf("%s: %v", c.spec, err)
		}
		if len(tp.Links) != c.links || len(tp.Flows) != c.flows {
			t.Errorf("%s: got %d links %d flows, want %d/%d",
				c.spec, len(tp.Links), len(tp.Flows), c.links, c.flows)
		}
		for i := range tp.Links {
			if tp.Links[i].PropDelay < 0.001 {
				t.Errorf("%s: link %s propagation delay %v below 1ms floor",
					c.spec, tp.Links[i].Name, tp.Links[i].PropDelay)
			}
		}
	}
}

// TestGenerateAdmitsAll is the provisioning contract: Rate = Σρ/util
// and Buffer = 4Σσ must keep every generated flow inside the FIFO
// admission region at every hop.
func TestGenerateAdmitsAll(t *testing.T) {
	tp, err := Generate("random?links=50,flows=500,seed=2")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), tp, Options{Duration: 0.2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rejections) != 0 {
		t.Fatalf("got %d rejections, want 0 (first: %+v)", len(res.Rejections), res.Rejections[0])
	}
	for i := range res.Flows {
		if !res.Flows[i].Admitted {
			t.Fatalf("flow %s not admitted", res.Flows[i].Name)
		}
	}
}

func TestGenerateSpecErrors(t *testing.T) {
	cases := []struct{ spec, want string }{
		{"mesh", "unknown generator kind"},
		{"line?links", "malformed parameter"},
		{"line?links=0", "positive integer"},
		{"line?depth=3", "unknown parameter"},
		{"random?util=0.9", "util must be in"},
		{"fattree?k=3", "must be even"},
	}
	for _, c := range cases {
		if _, err := Generate(c.spec); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Generate(%q) error = %v, want containing %q", c.spec, err, c.want)
		}
	}
}
