package topology

import (
	"context"
	"fmt"

	"bufqos/internal/core"
	"bufqos/internal/experiment"
	"bufqos/internal/metrics"
	"bufqos/internal/network"
	"bufqos/internal/packet"
	"bufqos/internal/sim"
	"bufqos/internal/source"
	"bufqos/internal/stats"
	"bufqos/internal/units"
)

// linkSeedBase offsets the seed stream of link components (randomized
// buffer managers) far away from the per-flow streams, so adding flows
// never perturbs a link's RNG and vice versa.
const linkSeedBase = 1 << 16

// Options parameterizes one scenario run.
type Options struct {
	// Duration is the simulated horizon in seconds.
	Duration float64
	// Seed is the base random seed; every flow and link derives its own
	// independent stream from it.
	Seed int64
	// Metrics, when non-nil, receives kernel and per-link counters. It
	// may be shared across concurrent runs.
	Metrics *metrics.Registry
}

// Rejection records one admission denial: the flow, the first link on
// its route that refused it, and the paper's reason taxonomy
// (bandwidth- vs buffer-limited, §2.3).
type Rejection struct {
	Flow   string
	Link   string
	At     float64
	Reason core.RejectReason
}

// LinkFlow is one flow's counters at one link.
type LinkFlow struct {
	Offered           stats.Counter
	Dropped           stats.Counter
	ConformantDropped stats.Counter
	Departed          stats.Counter
	// Forwarded counts packets handed to the next hop (or the delivery
	// sink) — the network.Router diagnostic.
	Forwarded int64
}

// LinkResult aggregates one link over a run.
type LinkResult struct {
	Name  string
	Flows []LinkFlow
	// Utilization is departed bits over capacity·duration, computed
	// against the link's declared (initial) rate.
	Utilization float64
}

// Departed sums the link's transmitted bytes across flows.
func (l *LinkResult) Departed() units.Bytes {
	var total units.Bytes
	for _, f := range l.Flows {
		total += f.Departed.Bytes
	}
	return total
}

// DroppedPackets sums the link's drops across flows.
func (l *LinkResult) DroppedPackets() int64 {
	var total int64
	for _, f := range l.Flows {
		total += f.Dropped.Packets
	}
	return total
}

// FlowResult is one flow's end-to-end outcome.
type FlowResult struct {
	Name string
	// Admitted is true when every link on the route accepted the flow.
	// A never-joining flow (rejected) has zero traffic counters.
	Admitted bool
	// Degraded marks flows whose route crosses a link that fails or has
	// its rate cut during the scenario; their guarantees are void for
	// the run (the paper's admission decision assumed the declared
	// rate).
	Degraded bool
	// JoinAt/LeaveAt bound the flow's active window. LeaveAt is the run
	// duration when the flow never leaves; Left tells the difference.
	JoinAt  float64
	LeaveAt float64
	Left    bool
	// Offered counts the flow's packets entering its first hop (after
	// shaping, so for shaped flows this is the conformant envelope).
	Offered stats.Counter
	// Delivered counts end-to-end completions.
	Delivered stats.Counter
	// Throughput is delivered bits over the active window.
	Throughput units.Rate
	// MeanDelay/MaxDelay summarize end-to-end delay (source departure
	// to final delivery), in seconds.
	MeanDelay float64
	MaxDelay  float64
}

// Result is the outcome of one scenario run.
type Result struct {
	Topology   string
	Duration   float64
	Seed       int64
	Flows      []FlowResult
	Links      []LinkResult
	Rejections []Rejection
}

// discipline maps a link's scheduler to the admission region it can
// guarantee: WFQ gets eqs. (5)-(6); everything else is held to the
// FIFO region, eqs. (7)-(8), which is the conservative choice — any
// flow set schedulable under FIFO thresholds is schedulable under the
// stronger schedulers too (B_FIFO ≥ B_WFQ for the same set).
func discipline(l *Link) core.Discipline {
	if l.scheme.SchedulerName() == "wfq" {
		return core.DisciplineWFQ
	}
	return core.DisciplineFIFO
}

// degradedLinks marks links whose declared capacity is violated during
// the scenario: a failure, or a rate event below the declared rate.
func degradedLinks(t *Topology) []bool {
	deg := make([]bool, len(t.Links))
	for _, ev := range t.Events {
		switch ev.Kind {
		case EventFail:
			deg[ev.link] = true
		case EventRate:
			if ev.Rate < t.Links[ev.link].Rate {
				deg[ev.link] = true
			}
		}
	}
	return deg
}

// stopper is the common surface of the traffic sources.
type stopper interface {
	Start()
	Stop()
}

// countingSink tallies a flow's offered traffic on its way into the
// first hop.
type countingSink struct {
	inner source.Sink
	count *stats.Counter
}

func (c countingSink) Receive(p *packet.Packet) {
	c.count.Add(p.Size)
	c.inner.Receive(p)
}

// runner is the mutable state of one scenario execution.
type runner struct {
	topo      *Topology
	opts      Options
	s         *sim.Simulator
	routers   []*network.Router
	cols      []*stats.Collector
	delivery  *network.Delivery
	admission []*core.AdmissionController
	sources   []stopper // nil until joined and admitted
	res       *Result
}

// Run executes one scenario and returns its measurements. ctx cancels
// a run between chunks of simulated time; results are bit-identical
// with and without a cancellable context, and across any worker count
// when driven through RunMany.
func Run(ctx context.Context, t *Topology, opts Options) (Result, error) {
	if opts.Duration <= 0 {
		return Result{}, fmt.Errorf("topology %s: non-positive duration %v", t.Name, opts.Duration)
	}
	r := &runner{
		topo: t,
		opts: opts,
		s:    sim.New(),
		res: &Result{
			Topology: t.Name,
			Duration: opts.Duration,
			Seed:     opts.Seed,
			Flows:    make([]FlowResult, len(t.Flows)),
		},
	}
	if opts.Metrics != nil {
		r.s.Instrument(opts.Metrics)
	}
	specs := t.Specs()
	r.delivery = network.NewDelivery(r.s, len(t.Flows))
	for li := range t.Links {
		l := &t.Links[li]
		col := stats.NewCollector(len(t.Flows), 0)
		cfg := l.schemeConfig(specs, sim.DeriveSeed(opts.Seed, linkSeedBase+li))
		router, err := network.NewRouterSpec(r.s, l.Name, l.Spec, cfg, col, l.PropDelay)
		if err != nil {
			return Result{}, fmt.Errorf("topology %s: %w", t.Name, err)
		}
		if opts.Metrics != nil {
			router.Link().Instrument(opts.Metrics, l.Spec)
		}
		r.routers = append(r.routers, router)
		r.cols = append(r.cols, col)
		r.admission = append(r.admission, core.NewAdmissionController(discipline(l), l.Rate, l.Buffer))
	}
	r.sources = make([]stopper, len(t.Flows))

	deg := degradedLinks(t)
	for fi := range t.Flows {
		fr := &r.res.Flows[fi]
		fr.Name = t.Flows[fi].Name
		fr.LeaveAt = opts.Duration
		for _, li := range t.Flows[fi].Route {
			if deg[li] {
				fr.Degraded = true
			}
		}
	}

	// Schedule the scenario: implicit joins first (declaration order),
	// then the timeline in sorted order. The kernel breaks time ties by
	// insertion sequence, so this ordering is deterministic.
	for fi := range t.Flows {
		if _, has := t.JoinTime(fi); !has {
			fi := fi
			r.s.At(0, func() { r.join(fi) })
		}
	}
	for i := range t.Events {
		ev := t.Events[i]
		r.s.At(ev.At, func() { r.apply(ev) })
	}

	if err := runUntilCtx(ctx, r.s, opts.Duration); err != nil {
		return Result{}, err
	}
	r.collect()
	return *r.res, nil
}

// join runs admission for one flow across its whole route and, when
// every hop accepts, wires the route and starts the source.
func (r *runner) join(fi int) {
	f := &r.topo.Flows[fi]
	fr := &r.res.Flows[fi]
	now := r.s.Now()
	fr.JoinAt = now
	for _, li := range f.Route {
		if reason := r.admission[li].Check(f.Spec); reason != core.Accepted {
			r.res.Rejections = append(r.res.Rejections, Rejection{
				Flow:   f.Name,
				Link:   r.topo.Links[li].Name,
				At:     now,
				Reason: reason,
			})
			return
		}
	}
	for _, li := range f.Route {
		r.admission[li].Admit(f.Spec)
	}
	fr.Admitted = true
	for h, li := range f.Route {
		next := source.Sink(r.delivery)
		if h+1 < len(f.Route) {
			next = r.routers[f.Route[h+1]]
		}
		r.routers[li].SetRoute(fi, next.Receive)
	}
	r.sources[fi] = r.buildSource(fi)
	r.sources[fi].Start()
}

// buildSource assembles the flow's generator chain into its first hop,
// with an offered-traffic counter (and, for shaped flows, the leaky
// bucket) between them.
func (r *runner) buildSource(fi int) stopper {
	f := &r.topo.Flows[fi]
	entry := source.Sink(countingSink{inner: r.routers[f.Route[0]], count: &r.res.Flows[fi].Offered})
	if f.Shaped {
		entry = source.NewShaper(r.s, f.Spec, entry)
	}
	switch f.Source {
	case SourceGreedy:
		// Saturate the shaper at the peak rate (or the first link's rate
		// when no peak is declared): the shaper output then follows the
		// (σ, ρ) envelope exactly.
		feed := f.Spec.PeakRate
		if feed <= 0 {
			feed = r.topo.Links[f.Route[0]].Rate
		}
		return source.NewSaturating(r.s, fi, f.PacketSize, feed, entry)
	case SourceCBR:
		return source.NewCBR(r.s, fi, f.PacketSize, f.AvgRate, entry)
	default: // SourceOnOff, enforced by Validate
		rng := sim.NewRand(sim.DeriveSeed(r.opts.Seed, fi))
		return source.NewOnOff(r.s, rng, source.OnOffConfig{
			Flow:       fi,
			PacketSize: f.PacketSize,
			PeakRate:   f.Spec.PeakRate,
			AvgRate:    f.AvgRate,
			MeanBurst:  f.MeanBurst,
		}, entry)
	}
}

// apply executes one timeline event.
func (r *runner) apply(ev Event) {
	switch ev.Kind {
	case EventJoin:
		r.join(ev.flow)
	case EventLeave:
		fr := &r.res.Flows[ev.flow]
		fr.Left = true
		fr.LeaveAt = r.s.Now()
		if !fr.Admitted {
			return
		}
		if src := r.sources[ev.flow]; src != nil {
			src.Stop()
		}
		// Reservations are released; routes stay wired so in-flight
		// packets still deliver.
		for _, li := range r.topo.Flows[ev.flow].Route {
			r.admission[li].Release(r.topo.Flows[ev.flow].Spec)
		}
	case EventRate:
		r.routers[ev.link].Link().SetRate(ev.Rate)
	case EventFail:
		r.routers[ev.link].Link().SetDown(true)
	case EventRecover:
		r.routers[ev.link].Link().SetDown(false)
	}
}

// collect folds the collectors and the delivery sink into the Result.
func (r *runner) collect() {
	t := r.topo
	for li := range t.Links {
		lr := LinkResult{Name: t.Links[li].Name, Flows: make([]LinkFlow, len(t.Flows))}
		for fi := range t.Flows {
			fs := r.cols[li].Flow(fi)
			lr.Flows[fi] = LinkFlow{
				Offered:           fs.Offered.Total(),
				Dropped:           fs.Dropped.Total(),
				ConformantDropped: fs.Dropped.Conformant,
				Departed:          fs.Departed.Total(),
				Forwarded:         r.routers[li].Forwarded(fi),
			}
		}
		lr.Utilization = lr.Departed().Bits() / (t.Links[li].Rate.BitsPerSecond() * r.opts.Duration)
		r.res.Links = append(r.res.Links, lr)
	}
	for fi := range t.Flows {
		fr := &r.res.Flows[fi]
		fr.Delivered = stats.Counter{
			Packets: r.delivery.Packets(fi),
			Bytes:   r.delivery.Bytes(fi),
		}
		if active := fr.LeaveAt - fr.JoinAt; active > 0 {
			fr.Throughput = units.Rate(fr.Delivered.Bytes.Bits() / active)
		}
		d := r.delivery.Delay(fi)
		fr.MeanDelay = d.Mean()
		fr.MaxDelay = d.Max()
	}
}

// runUntilCtx advances the simulation to duration in 64 exact-fraction
// chunks, checking ctx between them; results are bit-identical to an
// unchunked RunUntil (the same pattern the experiment runner uses).
func runUntilCtx(ctx context.Context, s *sim.Simulator, duration float64) error {
	if ctx == nil || ctx.Done() == nil {
		s.RunUntil(duration)
		return nil
	}
	const chunks = 64
	for i := 1; i <= chunks; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		s.RunUntil(duration * float64(i) / chunks)
	}
	return ctx.Err()
}

// RunMany executes runs independent replications — run r uses seed
// opts.Seed + r — fanning them over the experiment worker pool. Result
// slots are pre-assigned per run, so the output is bit-identical for
// any worker count. onDone, when non-nil, is called after each
// completed run (possibly concurrently).
func RunMany(ctx context.Context, t *Topology, opts Options, runs, workers int, onDone func(i int)) ([]Result, error) {
	if runs <= 0 {
		return nil, fmt.Errorf("topology %s: non-positive run count %d", t.Name, runs)
	}
	results := make([]Result, runs)
	err := experiment.ForEachJob(ctx, workers, runs, opts.Metrics, onDone, func(i int) error {
		o := opts
		o.Seed = opts.Seed + int64(i)
		res, err := Run(ctx, t, o)
		if err != nil {
			return fmt.Errorf("run %d (seed %d): %w", i, o.Seed, err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}
