package topology

import (
	"context"
	"fmt"

	"bufqos/internal/core"
	"bufqos/internal/experiment"
	"bufqos/internal/metrics"
	"bufqos/internal/packet"
	"bufqos/internal/source"
	"bufqos/internal/stats"
	"bufqos/internal/units"
)

// linkSeedBase offsets the seed stream of link components (randomized
// buffer managers) far away from the per-flow streams, so adding flows
// never perturbs a link's RNG and vice versa.
const linkSeedBase = 1 << 16

// Options parameterizes one scenario run.
type Options struct {
	// Duration is the simulated horizon in seconds.
	Duration float64
	// Seed is the base random seed; every flow and link derives its own
	// independent stream from it.
	Seed int64
	// Metrics, when non-nil, receives kernel and per-link counters. It
	// may be shared across concurrent runs.
	Metrics *metrics.Registry
	// Shards partitions the link graph into up to this many groups,
	// each driven by its own event kernel on its own goroutine with
	// conservative lookahead synchronization (see internal/shard).
	// Results are bit-identical for every value; 0 and 1 mean
	// single-shard. The effective count is clamped to the number of
	// zero-propagation-delay link groups.
	Shards int
	// SkipLinkFlows leaves LinkResult.Flows nil, keeping only the
	// always-populated Totals. With L links and F flows the per-link
	// flow tables cost O(L·F) memory in the Result — prohibitive at
	// 10³ links × 10⁵ flows — while Totals stay O(L). Verify skips its
	// per-link per-flow assertions when the tables are absent.
	SkipLinkFlows bool
}

// Rejection records one admission denial: the flow, the first link on
// its route that refused it, and the paper's reason taxonomy
// (bandwidth- vs buffer-limited, §2.3).
type Rejection struct {
	Flow   string
	Link   string
	At     float64
	Reason core.RejectReason
}

// LinkFlow is one flow's counters at one link.
type LinkFlow struct {
	Offered           stats.Counter
	Dropped           stats.Counter
	ConformantDropped stats.Counter
	Departed          stats.Counter
	// Forwarded counts packets handed to the next hop (or the delivery
	// sink).
	Forwarded int64
}

// LinkTotals aggregates one link's counters across all flows. Unlike
// the per-flow tables, totals are always populated (see
// Options.SkipLinkFlows).
type LinkTotals struct {
	Offered           stats.Counter
	Dropped           stats.Counter
	ConformantDropped stats.Counter
	Departed          stats.Counter
	Forwarded         int64
}

// LinkResult aggregates one link over a run.
type LinkResult struct {
	Name string
	// Flows holds per-flow counters indexed by global flow id; nil when
	// the run used Options.SkipLinkFlows.
	Flows []LinkFlow
	// Totals aggregates the same counters across all flows.
	Totals LinkTotals
	// Utilization is departed bits over capacity·duration, computed
	// against the link's declared (initial) rate.
	Utilization float64
}

// Departed sums the link's transmitted bytes across flows.
func (l *LinkResult) Departed() units.Bytes { return l.Totals.Departed.Bytes }

// DroppedPackets sums the link's drops across flows.
func (l *LinkResult) DroppedPackets() int64 { return l.Totals.Dropped.Packets }

// FlowResult is one flow's end-to-end outcome.
type FlowResult struct {
	Name string
	// Admitted is true when every link on the route accepted the flow.
	// A never-joining flow (rejected) has zero traffic counters.
	Admitted bool
	// Degraded marks flows whose route crosses a link that fails or has
	// its rate cut during the scenario; their guarantees are void for
	// the run (the paper's admission decision assumed the declared
	// rate).
	Degraded bool
	// JoinAt/LeaveAt bound the flow's active window. LeaveAt is the run
	// duration when the flow never leaves; Left tells the difference.
	JoinAt  float64
	LeaveAt float64
	Left    bool
	// Offered counts the flow's packets entering its first hop (after
	// shaping, so for shaped flows this is the conformant envelope).
	Offered stats.Counter
	// Delivered counts end-to-end completions.
	Delivered stats.Counter
	// Throughput is delivered bits over the active window.
	Throughput units.Rate
	// MeanDelay/MaxDelay summarize end-to-end delay (source departure
	// to final delivery), in seconds.
	MeanDelay float64
	MaxDelay  float64
	// Goodput counts a closed-loop (tcp) flow's unique delivered data —
	// retransmitted copies once — and GoodputRate spreads it over the
	// active window. Both are zero for open-loop flows, whose Delivered
	// already is goodput.
	Goodput     stats.Counter
	GoodputRate units.Rate
	// Retransmits counts segments a tcp source re-emitted (fast
	// retransmit and timeout recovery combined); zero for open-loop
	// flows.
	Retransmits int64
}

// Result is the outcome of one scenario run.
type Result struct {
	Topology   string
	Duration   float64
	Seed       int64
	Flows      []FlowResult
	Links      []LinkResult
	Rejections []Rejection
	// Events counts dispatched kernel events, summed across shards. It
	// is invariant across shard counts: a cross-shard hand-off replaces
	// exactly one propagation event.
	Events uint64
}

// discipline maps a link's scheduler to the admission region it can
// guarantee: WFQ gets eqs. (5)-(6); everything else is held to the
// FIFO region, eqs. (7)-(8), which is the conservative choice — any
// flow set schedulable under FIFO thresholds is schedulable under the
// stronger schedulers too (B_FIFO ≥ B_WFQ for the same set).
func discipline(l *Link) core.Discipline {
	if l.scheme.SchedulerName() == "wfq" {
		return core.DisciplineWFQ
	}
	return core.DisciplineFIFO
}

// degradedLinks marks links whose declared capacity is violated during
// the scenario: a failure, or a rate event below the declared rate.
func degradedLinks(t *Topology) []bool {
	deg := make([]bool, len(t.Links))
	for _, ev := range t.Events {
		switch ev.Kind {
		case EventFail:
			deg[ev.link] = true
		case EventRate:
			if ev.Rate < t.Links[ev.link].Rate {
				deg[ev.link] = true
			}
		}
	}
	return deg
}

// stopper is the common surface of the traffic sources.
type stopper interface {
	Start()
	Stop()
}

// countingSink tallies a flow's offered traffic on its way into the
// first hop.
type countingSink struct {
	inner source.Sink
	count *stats.Counter
}

func (c countingSink) Receive(p *packet.Packet) {
	c.count.Add(p.Size)
	c.inner.Receive(p)
}

// Run executes one scenario and returns its measurements. ctx cancels
// a run between synchronization windows; results are bit-identical
// with and without a cancellable context, across any worker count when
// driven through RunMany, and across any Options.Shards value.
func Run(ctx context.Context, t *Topology, opts Options) (Result, error) {
	if opts.Duration <= 0 {
		return Result{}, fmt.Errorf("topology %s: non-positive duration %v", t.Name, opts.Duration)
	}
	e, err := newEngine(t, opts)
	if err != nil {
		return Result{}, err
	}
	return e.run(ctx)
}

// RunMany executes runs independent replications — run r uses seed
// opts.Seed + r — fanning them over the experiment worker pool. Result
// slots are pre-assigned per run, so the output is bit-identical for
// any worker count. onDone, when non-nil, is called after each
// completed run (possibly concurrently).
func RunMany(ctx context.Context, t *Topology, opts Options, runs, workers int, onDone func(i int)) ([]Result, error) {
	if runs <= 0 {
		return nil, fmt.Errorf("topology %s: non-positive run count %d", t.Name, runs)
	}
	results := make([]Result, runs)
	err := experiment.ForEachJob(ctx, workers, runs, opts.Metrics, onDone, func(i int) error {
		o := opts
		o.Seed = opts.Seed + int64(i)
		res, err := Run(ctx, t, o)
		if err != nil {
			return fmt.Errorf("run %d (seed %d): %w", i, o.Seed, err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}
