package topology

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"bufqos/internal/stats"
)

// WriteFlowTable writes the per-flow end-to-end table, aggregating the
// runs (mean ± 95% CI over the replications, the paper's reporting
// convention).
func WriteFlowTable(w io.Writer, t *Topology, results []Result) error {
	if len(results) == 0 {
		return fmt.Errorf("topology %s: no results", t.Name)
	}
	fmt.Fprintf(w, "topology %s: %d flows, %d links, %d runs of %.3gs\n",
		t.Name, len(t.Flows), len(t.Links), len(results), results[0].Duration)
	fmt.Fprintf(w, "%-12s %-22s %-7s %-9s %-18s %-18s %-8s %-16s %s\n",
		"flow", "route", "source", "admitted", "delivered (Mb/s)", "goodput (Mb/s)", "retx", "mean delay (ms)", "status")
	for fi := range t.Flows {
		f := &t.Flows[fi]
		var thr, goodput, retx, delay []float64
		admitted := 0
		status := ""
		for ri := range results {
			fr := &results[ri].Flows[fi]
			if fr.Admitted {
				admitted++
				thr = append(thr, fr.Throughput.Mbits())
				delay = append(delay, fr.MeanDelay*1000)
				if f.Source == SourceTCP {
					goodput = append(goodput, fr.GoodputRate.Mbits())
					retx = append(retx, float64(fr.Retransmits))
				}
			}
			if fr.Degraded {
				status = "degraded"
			}
			if fr.Left {
				status = strings.TrimSpace(status + " left")
			}
		}
		if admitted == 0 {
			status = strings.TrimSpace("rejected " + status)
		}
		fmt.Fprintf(w, "%-12s %-22s %-7s %2d/%-6d %-18s %-18s %-8s %-16s %s\n",
			f.Name, strings.Join(f.RouteNodes, "-"), f.Source,
			admitted, len(results), summaryOrDash(thr), summaryOrDash(goodput),
			summaryOrDash(retx), summaryOrDash(delay), status)
	}
	if rej := rejectionLines(results); len(rej) > 0 {
		fmt.Fprintln(w, "rejections:")
		for _, line := range rej {
			fmt.Fprintf(w, "  %s\n", line)
		}
	}
	return nil
}

// WriteLinkTable writes the per-link table aggregated over the runs.
func WriteLinkTable(w io.Writer, t *Topology, results []Result) error {
	if len(results) == 0 {
		return fmt.Errorf("topology %s: no results", t.Name)
	}
	fmt.Fprintf(w, "%-14s %-24s %-10s %-9s %-16s %-14s %s\n",
		"link", "scheme", "rate", "buffer", "utilization", "drops (pkts)", "conf. drops")
	for li := range t.Links {
		l := &t.Links[li]
		var util, drops, confDrops []float64
		for ri := range results {
			lr := &results[ri].Links[li]
			util = append(util, lr.Utilization)
			drops = append(drops, float64(lr.DroppedPackets()))
			var cd int64
			for fi := range lr.Flows {
				cd += lr.Flows[fi].ConformantDropped.Packets
			}
			confDrops = append(confDrops, float64(cd))
		}
		fmt.Fprintf(w, "%-14s %-24s %-10v %-9v %-16s %-14s %s\n",
			l.Name, l.Spec, l.Rate, l.Buffer,
			stats.Summarize(util).String(), stats.Summarize(drops).String(),
			stats.Summarize(confDrops).String())
	}
	return nil
}

func summaryOrDash(v []float64) string {
	if len(v) == 0 {
		return "-"
	}
	return stats.Summarize(v).String()
}

func rejectionLines(results []Result) []string {
	var lines []string
	for ri := range results {
		for _, rej := range results[ri].Rejections {
			lines = append(lines, fmt.Sprintf("seed %d t=%.3g: flow %s at link %s: %s",
				results[ri].Seed, rej.At, rej.Flow, rej.Link, rej.Reason))
		}
	}
	return lines
}

// WriteFlowCSV emits one row per (run, flow) with the end-to-end
// measurements, machine-readable for downstream analysis.
func WriteFlowCSV(w io.Writer, t *Topology, results []Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"run", "seed", "flow", "route", "source", "admitted", "degraded", "left",
		"join_s", "leave_s", "offered_bytes", "delivered_bytes", "delivered_packets",
		"throughput_mbps", "goodput_bytes", "goodput_mbps", "retransmits",
		"mean_delay_ms", "max_delay_ms",
	}); err != nil {
		return err
	}
	for ri := range results {
		res := &results[ri]
		for fi := range t.Flows {
			fr := &res.Flows[fi]
			rec := []string{
				strconv.Itoa(ri),
				strconv.FormatInt(res.Seed, 10),
				t.Flows[fi].Name,
				strings.Join(t.Flows[fi].RouteNodes, "-"),
				string(t.Flows[fi].Source),
				strconv.FormatBool(fr.Admitted),
				strconv.FormatBool(fr.Degraded),
				strconv.FormatBool(fr.Left),
				fmtG(fr.JoinAt), fmtG(fr.LeaveAt),
				strconv.FormatInt(int64(fr.Offered.Bytes), 10),
				strconv.FormatInt(int64(fr.Delivered.Bytes), 10),
				strconv.FormatInt(fr.Delivered.Packets, 10),
				fmtG(fr.Throughput.Mbits()),
				strconv.FormatInt(int64(fr.Goodput.Bytes), 10),
				fmtG(fr.GoodputRate.Mbits()),
				strconv.FormatInt(fr.Retransmits, 10),
				fmtG(fr.MeanDelay * 1000),
				fmtG(fr.MaxDelay * 1000),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteLinkCSV emits one row per (run, link, flow) with the per-hop
// counters, including the router's forwarding diagnostics.
func WriteLinkCSV(w io.Writer, t *Topology, results []Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"run", "seed", "link", "flow", "offered_bytes", "dropped_bytes",
		"conformant_dropped_bytes", "departed_bytes", "forwarded_packets",
	}); err != nil {
		return err
	}
	for ri := range results {
		res := &results[ri]
		for li := range t.Links {
			for fi := range t.Flows {
				lf := &res.Links[li].Flows[fi]
				rec := []string{
					strconv.Itoa(ri),
					strconv.FormatInt(res.Seed, 10),
					t.Links[li].Name,
					t.Flows[fi].Name,
					strconv.FormatInt(int64(lf.Offered.Bytes), 10),
					strconv.FormatInt(int64(lf.Dropped.Bytes), 10),
					strconv.FormatInt(int64(lf.ConformantDropped.Bytes), 10),
					strconv.FormatInt(int64(lf.Departed.Bytes), 10),
					strconv.FormatInt(lf.Forwarded, 10),
				}
				if err := cw.Write(rec); err != nil {
					return err
				}
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

func fmtG(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }
