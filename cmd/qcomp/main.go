// Command qcomp measures empirical competitive ratios: it sweeps the
// online buffer-management policies of internal/online (value-aware
// greedy, class-segregated preemption, the multi-queue LQF family)
// against adversarial arrival generators (the papers' lower-bound
// constructions, seeded random bursts, adaptive hill-climbing) and
// compares each run to the exact offline optimum computed by the
// min-cost max-flow solver. Cells report mean and worst OPT/ALG next
// to the proven bound from the literature.
//
// Usage:
//
//	qcomp                                    # full sweep, table on stdout
//	qcomp -policies lqf,semigreedy -buffers 1,2,4,8
//	qcomp -n 20 -seed 7 -workers 4 -out BENCH_competitive.json
//	qcomp -check                             # exit 1 on any bound violation
//	qcomp -replay repro.json                 # re-evaluate a saved instance
//	qcomp -list                              # policy and adversary catalogues
//
// Reports are bit-identical for a given seed at any -workers count.
// Exit status: 0 (with -check: all bounds held), 1 violations found,
// 130 interrupted.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"bufqos/internal/online"
	"bufqos/internal/validate"
)

func main() {
	var (
		policies    = flag.String("policies", "", "comma-separated policy names (default: all)")
		adversaries = flag.String("adversaries", "", "comma-separated adversary names (default: all)")
		queues      = flag.Int("queues", 3, "queue (multiqueue) / class (shared) count m")
		buffers     = flag.String("buffers", "1,2,4", "comma-separated buffer sizes to sweep")
		reps        = flag.Int("n", 5, "seeded replications per randomized cell")
		seed        = flag.Int64("seed", 1, "campaign seed (cell replication seeds derive from it)")
		eps         = flag.Float64("eps", 1e-9, "tolerance above a proven bound before counting a violation")
		workers     = flag.Int("workers", 0, "concurrent cells (0 = GOMAXPROCS; reports are identical)")
		outPath     = flag.String("out", "", "also write the report as JSON to this file")
		check       = flag.Bool("check", false, "exit 1 if any bounded policy exceeds its proven ratio")
		replayPath  = flag.String("replay", "", "re-evaluate a saved instance file instead of sweeping")
		list        = flag.Bool("list", false, "print the policy and adversary catalogues and exit")
	)
	flag.Parse()

	if *list {
		listCatalogues()
		return
	}
	if *replayPath != "" {
		if err := replay(*replayPath, *policies); err != nil {
			fatalf("%v", err)
		}
		return
	}

	opts := validate.CompeteOptions{
		Queues:  *queues,
		Reps:    *reps,
		Seed:    *seed,
		Eps:     *eps,
		Workers: *workers,
	}
	if *policies != "" {
		opts.Policies = strings.Split(*policies, ",")
	}
	if *adversaries != "" {
		opts.Adversaries = strings.Split(*adversaries, ",")
	}
	var err error
	if opts.Buffers, err = parseInts(*buffers); err != nil {
		fatalf("-buffers: %v", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	rep, err := validate.Compete(ctx, opts)
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "qcomp: interrupted")
		os.Exit(130)
	}
	if err != nil {
		fatalf("%v", err)
	}
	writeTable(rep)
	if *outPath != "" {
		if err := writeJSON(*outPath, rep); err != nil {
			fatalf("%v", err)
		}
	}
	if v := rep.Violations(); len(v) > 0 {
		fmt.Printf("%d cell(s) violate their proven bound\n", len(v))
		if *check {
			os.Exit(1)
		}
	} else if *check {
		fmt.Println("all proven bounds held")
	}
}

// replay loads one saved instance (a qfuzz reproducer or a hand-written
// file) and evaluates every compatible policy on it.
func replay(path, policyFilter string) error {
	in, err := online.LoadInstance(path)
	if err != nil {
		return err
	}
	fmt.Printf("%s: model %s, m=%d, B=%d, %d arrivals (total value %g)\n",
		path, in.Model, in.Queues, in.Buffer, len(in.Arrivals), in.TotalValue())
	opt, err := online.Opt(in)
	if err != nil {
		return err
	}
	fmt.Printf("  OPT = %g\n", opt)
	selected := map[string]bool{}
	for _, name := range strings.Split(policyFilter, ",") {
		if name = strings.TrimSpace(name); name != "" {
			selected[name] = true
		}
	}
	ran := 0
	for _, p := range online.Policies() {
		if p.Model != in.Model || (len(selected) > 0 && !selected[p.Name]) {
			continue
		}
		out, err := online.Evaluate(p, in)
		if err != nil {
			return err
		}
		verdict := ""
		if p.Bound > 0 && out.Ratio > p.Bound+1e-9 {
			verdict = "  VIOLATES bound " + strconv.FormatFloat(p.Bound, 'g', -1, 64)
		}
		fmt.Printf("  %-12s ALG = %-8g ratio = %-8.6g%s\n", p.Name, out.ALG, out.Ratio, verdict)
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("no selected policy matches the instance's %s model", in.Model)
	}
	return nil
}

func listCatalogues() {
	fmt.Println("policies:")
	for _, p := range online.Policies() {
		bound := "unbounded"
		if p.Bound > 0 {
			bound = strconv.FormatFloat(p.Bound, 'g', -1, 64) + "-competitive"
		}
		fmt.Printf("  %-12s %-12s %-16s %s\n  %-12s %s\n", p.Name, p.Model, bound, p.Doc, "", p.Cite)
	}
	fmt.Println("adversaries:")
	for _, a := range validate.Adversaries() {
		model := "any model"
		if a.Model != "" {
			model = string(a.Model)
		}
		fmt.Printf("  %-14s %-12s %s\n  %-14s %s\n", a.Name, model, a.Doc, "", a.Cite)
	}
}

// writeTable renders the report as a fixed-width table, worst cells
// last so they end up next to the verdict line.
func writeTable(rep *validate.CompeteReport) {
	fmt.Printf("competitive sweep: seed %d, m=%d, %d reps, eps %g\n",
		rep.Seed, rep.Queues, rep.Reps, rep.Eps)
	fmt.Printf("%-12s %-14s %-11s %3s %4s %7s %9s %9s %10s\n",
		"policy", "adversary", "model", "B", "reps", "bound", "mean", "max", "violations")
	for _, c := range rep.Cells {
		bound := "—"
		if c.Bound > 0 {
			bound = strconv.FormatFloat(c.Bound, 'g', -1, 64)
		}
		fmt.Printf("%-12s %-14s %-11s %3d %4d %7s %9.4f %9.4f %10d\n",
			c.Policy, c.Adversary, c.Model, c.Buffer, c.Reps, bound, c.MeanRatio, c.MaxRatio, c.Violations)
	}
}

func writeJSON(path string, rep *validate.CompeteReport) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, tok := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("%q is not a positive integer", tok)
		}
		out = append(out, n)
	}
	return out, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "qcomp: "+format+"\n", args...)
	os.Exit(1)
}
