// Command qload drives a running qosd daemon with a deterministic,
// seeded stream of join / leave / reroute requests from N concurrent
// clients and reports the daemon's decision throughput and request
// latency percentiles.
//
// Usage:
//
//	qload -addr 127.0.0.1:8080 -clients 8 -ops 1000000 -out BENCH_qosd.json
//	qload -addr $(cat /tmp/qosd.addr) -ops 5000 -check-snapshot
//
// Determinism: the daemon's links are partitioned across clients
// (link i belongs to client i mod N), every client routes its flows
// only over its own links, and each client derives its operation
// stream from its own seeded generator. Admission decisions on a link
// therefore depend only on its owner's request order, so the combined
// decision checksum is bit-identical for a fixed -seed and -clients —
// regardless of goroutine scheduling or network timing. With
// -passes 2 qload proves it: the daemon is reset and the workload
// replayed, and the two checksums must match.
//
// -check-snapshot additionally round-trips the daemon's state at the
// end: GET /v1/snapshot, POST it back to /v1/restore, GET again, and
// require byte-identical documents.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"bufqos/internal/packet"
	"bufqos/internal/qosd"
	"bufqos/internal/sim"
	"bufqos/internal/units"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8080", "qosd address (host:port)")
		clients  = flag.Int("clients", 8, "concurrent client goroutines")
		ops      = flag.Int("ops", 200000, "total operations across all clients")
		seed     = flag.Int64("seed", 1, "base seed for the operation streams")
		batch    = flag.Int("batch", 64, "joins per /v1/batch request")
		passes   = flag.Int("passes", 1, "replay passes; 2 resets the daemon and checks checksum equality")
		out      = flag.String("out", "", "write a benchmark JSON to this file")
		maxAct   = flag.Int("max-active", 4096, "per-client cap on concurrently joined flows")
		joinFrac = flag.Float64("join-frac", 0.60, "fraction of operations that are joins")
		leaveFrc = flag.Float64("leave-frac", 0.25, "fraction of operations that are leaves (the rest reroute)")
		checkSnp = flag.Bool("check-snapshot", false, "after the replay, require snapshot -> restore -> snapshot to be byte-identical")
	)
	flag.Parse()
	if *clients <= 0 || *ops <= 0 || *batch <= 0 || *passes < 1 || *passes > 2 {
		fatalf("need -clients > 0, -ops > 0, -batch > 0, -passes 1 or 2")
	}
	if *joinFrac < 0 || *leaveFrc < 0 || *joinFrac+*leaveFrc > 1 {
		fatalf("need -join-frac >= 0, -leave-frac >= 0, and their sum <= 1")
	}
	cfg := loadConfig{
		clients: *clients, ops: *ops, batch: *batch, maxActive: *maxAct,
		seed: *seed, joinFrac: *joinFrac, leaveFrac: *leaveFrc,
	}

	base := "http://" + *addr
	hc := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: *clients + 2}}

	var health qosd.Health
	if err := getJSON(hc, base+"/healthz", &health); err != nil {
		fatalf("daemon not reachable at %s: %v", base, err)
	}
	var links []qosd.LinkState
	if err := getJSON(hc, base+"/v1/links", &links); err != nil {
		fatalf("listing links: %v", err)
	}
	if len(links) < *clients {
		fatalf("%d links cannot be partitioned over %d clients", len(links), *clients)
	}
	names := make([]string, len(links))
	for i, l := range links {
		names[i] = l.Name
	}

	// Every pass starts from an empty daemon so replays of the same
	// seed always see the same admission state.
	resetDaemon(hc, base)
	var first, second passResult
	first = runPass(hc, base, names, cfg)
	identical := true
	if *passes == 2 {
		resetDaemon(hc, base)
		second = runPass(hc, base, names, cfg)
		identical = first.checksum == second.checksum
		if !identical {
			fmt.Fprintf(os.Stderr, "qload: PASS MISMATCH: %016x vs %016x\n", first.checksum, second.checksum)
		}
	}

	if *checkSnp {
		if err := checkSnapshotRoundTrip(hc, base); err != nil {
			fatalf("snapshot round trip: %v", err)
		}
		fmt.Fprintln(os.Stderr, "qload: snapshot -> restore -> snapshot byte-identical")
	}

	report := benchReport(health.Topology, len(links), cfg, *passes, identical, first)
	enc := json.NewEncoder(os.Stderr)
	enc.SetIndent("", "  ")
	enc.Encode(report) //nolint:errcheck
	if *out != "" {
		b, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fatalf("%v", err)
		}
		if err := os.WriteFile(*out, append(b, '\n'), 0o644); err != nil {
			fatalf("%v", err)
		}
	}
	if !identical {
		os.Exit(1)
	}
}

// loadConfig is one replay's shape: how many clients, how many
// operations, and the join/leave/reroute mix.
type loadConfig struct {
	clients, ops, batch, maxActive int
	seed                           int64
	joinFrac, leaveFrac            float64
}

// passResult aggregates one full replay.
type passResult struct {
	decisions, joins, leaves, reroutes int
	admitted, rejBW, rejBuf            int
	elapsed                            time.Duration
	latencies                          []float64 // per HTTP request, seconds
	checksum                           uint64
}

// specTemplates are the reservation profiles the generator draws from.
// All rates and sizes are integers (in bits/s and bytes), so per-link
// aggregate sums are exact in float64 no matter the admission order —
// which is what makes snapshot round trips byte-identical.
func specTemplates() []packet.FlowSpec {
	sigmas := []units.Bytes{units.KiloBytes(10), units.KiloBytes(20), units.KiloBytes(40), units.KiloBytes(60)}
	rhos := []units.Rate{100_000, 250_000, 500_000, 1_000_000}
	var out []packet.FlowSpec
	for _, s := range sigmas {
		for _, r := range rhos {
			out = append(out, packet.FlowSpec{PeakRate: 4 * r, TokenRate: r, BucketSize: s})
		}
	}
	return out
}

func runPass(hc *http.Client, base string, links []string, cfg loadConfig) passResult {
	results := make([]passResult, cfg.clients)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < cfg.clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			results[c] = runClient(hc, base, links, c, cfg)
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	total := passResult{elapsed: elapsed}
	h := fnv.New64a()
	for c, r := range results {
		total.decisions += r.decisions
		total.joins += r.joins
		total.leaves += r.leaves
		total.reroutes += r.reroutes
		total.admitted += r.admitted
		total.rejBW += r.rejBW
		total.rejBuf += r.rejBuf
		total.latencies = append(total.latencies, r.latencies...)
		fmt.Fprintf(h, "%d:%016x;", c, r.checksum)
	}
	total.checksum = h.Sum64()
	return total
}

// runClient replays one client's deterministic operation stream over
// its own partition of the links (link i where i mod clients == c).
func runClient(hc *http.Client, base string, links []string, c int, cfg loadConfig) passResult {
	var owned []string
	for i := c; i < len(links); i += cfg.clients {
		owned = append(owned, links[i])
	}
	rng := sim.NewRand(cfg.seed + int64(c)*1000003)
	specs := specTemplates()
	h := fnv.New64a()
	var res passResult
	var active []string
	var pending []qosd.BatchOp
	nameSeq := 0

	// pickRoute draws 1-3 distinct owned links by rejection sampling —
	// a full Perm over the partition would dominate client CPU.
	var idx [3]int
	pickRoute := func() []string {
		n := 1 + rng.Intn(min(3, len(owned)))
		route := make([]string, 0, n)
		for len(route) < n {
			k := rng.Intn(len(owned))
			dup := false
			for _, p := range idx[:len(route)] {
				if p == k {
					dup = true
					break
				}
			}
			if !dup {
				idx[len(route)] = k
				route = append(route, owned[k])
			}
		}
		return route
	}
	// sum folds one decision into the client checksum without fmt's
	// per-call formatting overhead.
	sum := func(kind byte, flow string, admitted bool, link, reason string) {
		ok := byte('0')
		if admitted {
			ok = '1'
		}
		h.Write([]byte{kind, '|'})    //nolint:errcheck
		io.WriteString(h, flow)       //nolint:errcheck
		h.Write([]byte{'|', ok, '|'}) //nolint:errcheck
		io.WriteString(h, link)       //nolint:errcheck
		h.Write([]byte{'|'})          //nolint:errcheck
		io.WriteString(h, reason)     //nolint:errcheck
		h.Write([]byte{';'})          //nolint:errcheck
	}
	flush := func() {
		if len(pending) == 0 {
			return
		}
		var resp qosd.BatchResponse
		code := post(hc, base+"/v1/batch", qosd.BatchRequest{Ops: pending}, &resp, &res.latencies)
		if code != 200 || len(resp.Decisions) != len(pending) {
			fatalf("client %d: batch: code %d, %d decisions for %d ops", c, code, len(resp.Decisions), len(pending))
		}
		for i, d := range resp.Decisions {
			if d.Error != "" {
				fatalf("client %d: batch entry %s: %s", c, d.Flow, d.Error)
			}
			res.decisions++
			switch pending[i].Op {
			case "join":
				sum('J', d.Flow, d.Admitted, d.Link, d.Reason)
				if d.Admitted {
					res.admitted++
					active = append(active, d.Flow)
				} else if d.Reason == "bandwidth-limited" {
					res.rejBW++
				} else {
					res.rejBuf++
				}
			case "leave":
				sum('L', d.Flow, d.Admitted, "", "")
			case "reroute":
				sum('R', d.Flow, d.Admitted, d.Link, d.Reason)
			}
		}
		pending = pending[:0]
	}
	queue := func(op qosd.BatchOp) {
		pending = append(pending, op)
		if len(pending) >= cfg.batch {
			flush()
		}
	}

	for op := 0; op < cfg.ops/cfg.clients; op++ {
		p := rng.Float64()
		switch {
		case (p < cfg.joinFrac || len(active) == 0 && len(pending) == 0) && len(active) < cfg.maxActive:
			name := "c" + strconv.Itoa(c) + "-" + strconv.Itoa(nameSeq)
			nameSeq++
			res.joins++
			queue(qosd.BatchOp{Op: "join", Flow: name, Links: pickRoute(), Spec: &specs[rng.Intn(len(specs))]})
		case p < cfg.joinFrac+cfg.leaveFrac || len(active) == 0:
			if len(active) == 0 {
				// Pending joins have not materialized yet; force them
				// through so there is something to leave.
				flush()
				if len(active) == 0 {
					continue
				}
			}
			i := rng.Intn(len(active))
			name := active[i]
			active[i] = active[len(active)-1]
			active = active[:len(active)-1]
			res.leaves++
			queue(qosd.BatchOp{Op: "leave", Flow: name})
		default:
			res.reroutes++
			queue(qosd.BatchOp{Op: "reroute", Flow: active[rng.Intn(len(active))], Links: pickRoute()})
		}
	}
	flush()
	res.checksum = h.Sum64()
	return res
}

// benchRow is the committed benchmark document (BENCH_qosd.json).
type benchRow struct {
	Topology         string  `json:"topology"`
	Links            int     `json:"links"`
	Clients          int     `json:"clients"`
	Seed             int64   `json:"seed"`
	Batch            int     `json:"batch"`
	HostCores        int     `json:"host_cores"`
	JoinFrac         float64 `json:"join_frac"`
	LeaveFrac        float64 `json:"leave_frac"`
	Decisions        int     `json:"decisions"`
	Joins            int     `json:"joins"`
	Leaves           int     `json:"leaves"`
	Reroutes         int     `json:"reroutes"`
	Admitted         int     `json:"admitted"`
	RejectedBW       int     `json:"rejected_bandwidth"`
	RejectedBuf      int     `json:"rejected_buffer"`
	WallSeconds      float64 `json:"wall_seconds"`
	AdmissionsPerSec float64 `json:"admissions_per_sec"`
	P50Micros        float64 `json:"latency_p50_usec"`
	P99Micros        float64 `json:"latency_p99_usec"`
	P999Micros       float64 `json:"latency_p999_usec"`
	Checksum         string  `json:"checksum"`
	Passes           int     `json:"passes"`
	Identical        bool    `json:"identical"`
}

func benchReport(topo string, links int, cfg loadConfig, passes int, identical bool, r passResult) benchRow {
	sort.Float64s(r.latencies)
	pct := func(q float64) float64 {
		if len(r.latencies) == 0 {
			return 0
		}
		return r.latencies[int(q*float64(len(r.latencies)-1))] * 1e6
	}
	return benchRow{
		Topology:         topo,
		Links:            links,
		Clients:          cfg.clients,
		Seed:             cfg.seed,
		Batch:            cfg.batch,
		HostCores:        runtime.GOMAXPROCS(0),
		JoinFrac:         cfg.joinFrac,
		LeaveFrac:        cfg.leaveFrac,
		Decisions:        r.decisions,
		Joins:            r.joins,
		Leaves:           r.leaves,
		Reroutes:         r.reroutes,
		Admitted:         r.admitted,
		RejectedBW:       r.rejBW,
		RejectedBuf:      r.rejBuf,
		WallSeconds:      r.elapsed.Seconds(),
		AdmissionsPerSec: float64(r.decisions) / r.elapsed.Seconds(),
		P50Micros:        pct(0.50),
		P99Micros:        pct(0.99),
		P999Micros:       pct(0.999),
		Checksum:         fmt.Sprintf("%016x", r.checksum),
		Passes:           passes,
		Identical:        identical,
	}
}

// resetDaemon clears the daemon's flow table by restoring an empty
// snapshot.
func resetDaemon(hc *http.Client, base string) {
	var rr qosd.RestoreResponse
	var lat []float64
	if code := post(hc, base+"/v1/restore", qosd.Snapshot{}, &rr, &lat); code != 200 {
		fatalf("reset: code %d", code)
	}
}

func checkSnapshotRoundTrip(hc *http.Client, base string) error {
	before, err := getRaw(hc, base+"/v1/snapshot")
	if err != nil {
		return err
	}
	resp, err := hc.Post(base+"/v1/restore", "application/json", bytes.NewReader(before))
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != 200 {
		return fmt.Errorf("restore: code %d", resp.StatusCode)
	}
	after, err := getRaw(hc, base+"/v1/snapshot")
	if err != nil {
		return err
	}
	if !bytes.Equal(before, after) {
		return fmt.Errorf("snapshots differ (%d vs %d bytes)", len(before), len(after))
	}
	return nil
}

func post(hc *http.Client, url string, body, out any, lats *[]float64) int {
	b, err := json.Marshal(body)
	if err != nil {
		fatalf("%v", err)
	}
	start := time.Now()
	resp, err := hc.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			fatalf("POST %s: decode: %v", url, err)
		}
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	*lats = append(*lats, time.Since(start).Seconds())
	return resp.StatusCode
}

func getJSON(hc *http.Client, url string, out any) error {
	resp, err := hc.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		return fmt.Errorf("GET %s: code %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func getRaw(hc *http.Client, url string) ([]byte, error) {
	resp, err := hc.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		return nil, fmt.Errorf("GET %s: code %d", url, resp.StatusCode)
	}
	return io.ReadAll(resp.Body)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "qload: "+format+"\n", args...)
	os.Exit(1)
}
