// Command qosd runs the admission control plane as a daemon: it loads
// a topology (or generates one), builds one admission shard per link,
// and serves flow join / leave / reroute decisions over HTTP/JSON —
// the paper's §2.3 schedulability regions as a long-running service.
//
// Usage:
//
//	qosd -topology topologies/tandem3.json
//	qosd -gen "random?links=1000,flows=100000,seed=1" -addr 127.0.0.1:9090
//	qosd -addr 127.0.0.1:0 -addr-file /tmp/qosd.addr -gen "line?links=8"
//
// The daemon starts with an empty flow table (declared flows in the
// topology file parameterize the simulator, not the control plane) and
// drains gracefully on SIGTERM/SIGINT: in-flight requests finish, new
// connections are refused, and the final flow count is reported. With
// -addr 127.0.0.1:0 the kernel picks a free port; -addr-file publishes
// the bound address for scripts to discover.
//
// See internal/qosd for the API surface (/v1/join, /v1/batch,
// /v1/leave, /v1/reroute, /v1/snapshot, /v1/restore, /v1/links,
// /healthz, /metricz).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime/debug"
	"runtime/pprof"
	"syscall"
	"time"

	"bufqos/internal/metrics"
	"bufqos/internal/qosd"
	"bufqos/internal/topology"
)

func main() {
	var (
		topoPath  = flag.String("topology", "", "JSON scenario file (required unless -gen)")
		genSpec   = flag.String("gen", "", "generate a synthetic topology instead, e.g. 'random?links=1000,flows=100000,seed=1'")
		addr      = flag.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port)")
		addrFile  = flag.String("addr-file", "", "write the bound address to this file once listening")
		drainSecs = flag.Float64("drain-timeout", 10, "seconds to wait for in-flight requests on shutdown")
		pprofOut  = flag.String("pprof", "", "write a CPU profile of the serving loop to this file")
	)
	flag.Parse()

	if (*topoPath == "") == (*genSpec == "") {
		fatalf("exactly one of -topology or -gen is required")
	}
	var topo *topology.Topology
	var err error
	if *genSpec != "" {
		topo, err = topology.Generate(*genSpec)
	} else {
		topo, err = topology.Load(*topoPath)
	}
	if err != nil {
		fatalf("%v", err)
	}

	// The long-lived admission state is tiny next to the per-request
	// garbage, so the default GC target collects far too eagerly under
	// batch load. Trade some RSS for fewer cycles unless the operator
	// has already tuned GOGC.
	if os.Getenv("GOGC") == "" {
		debug.SetGCPercent(400)
	}

	reg := metrics.NewRegistry()
	srv, err := qosd.New(topo, reg)
	if err != nil {
		fatalf("%v", err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatalf("%v", err)
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		// The file appears only after the socket is live, so pollers
		// that read it never race the bind.
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			fatalf("writing -addr-file: %v", err)
		}
	}
	fmt.Fprintf(os.Stderr, "qosd: topology %s (%d links) on http://%s\n",
		topo.Name, srv.NumLinks(), bound)

	if *pprofOut != "" {
		f, err := os.Create(*pprofOut)
		if err != nil {
			fatalf("%v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("%v", err)
		}
		defer pprof.StopCPUProfile()
	}

	hs := &http.Server{Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		fatalf("serve: %v", err)
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting, let in-flight decisions finish.
	fmt.Fprintf(os.Stderr, "qosd: draining (%d flows active)\n", srv.NumFlows())
	dctx, cancel := context.WithTimeout(context.Background(), time.Duration(*drainSecs*float64(time.Second)))
	defer cancel()
	if err := hs.Shutdown(dctx); err != nil {
		fatalf("drain: %v", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatalf("serve: %v", err)
	}
	fmt.Fprintf(os.Stderr, "qosd: drained cleanly, %d flows at shutdown\n", srv.NumFlows())
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "qosd: "+format+"\n", args...)
	os.Exit(1)
}
