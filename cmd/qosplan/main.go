// Command qosplan is the analytic companion to qsim: it evaluates the
// paper's closed-form results for a workload without simulating.
//
//	qosplan -workload table1            # thresholds, buffer requirements
//	qosplan -workload table2 -queues 3  # hybrid allocation (Prop. 3)
//	qosplan -curve                      # eq. (10) buffer-vs-utilization
//
// Output covers: per-flow thresholds (Prop. 2 / §3.2), FIFO vs WFQ
// minimum buffers (§2.3), the reserved-utilization inflation curve
// (eq. 10), and for -queues > 1 the hybrid rate allocation, per-queue
// buffers, and buffer savings (eqs. 14–19).
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"bufqos/internal/core"
	"bufqos/internal/experiment"
	"bufqos/internal/packet"
	"bufqos/internal/units"
)

func main() {
	var (
		workload = flag.String("workload", "table1", "flow set: table1 or table2")
		rateMb   = flag.Float64("rate", 48, "link rate in Mb/s")
		bufferMB = flag.Float64("buffer", 1, "total buffer in MB (for threshold display)")
		queues   = flag.Int("queues", 3, "hybrid queue count (0 to skip hybrid analysis)")
		curve    = flag.Bool("curve", false, "print the eq. (10) buffer-inflation curve and exit")
		optimize = flag.Bool("optimize", false, "search for the buffer-optimal flow grouping")
	)
	flag.Parse()

	if *curve {
		printCurve()
		return
	}

	var flows []experiment.FlowConfig
	var queueOf []int
	switch *workload {
	case "table1":
		flows, queueOf = experiment.Table1Flows(), experiment.Table1QueueOf()
	case "table2":
		flows, queueOf = experiment.Table2Flows(), experiment.Table2QueueOf()
	default:
		fatalf("unknown workload %q", *workload)
	}
	specs := experiment.Specs(flows)
	r := units.MbitsPerSecond(*rateMb)
	b := units.MegaBytes(*bufferMB)

	u := core.ReservedUtilization(specs, r)
	fmt.Printf("workload %s: %d flows on a %v link, reserved utilization u = %.3f\n",
		*workload, len(specs), r, u)
	fmt.Printf("offered load: %.2f of link capacity\n\n", experiment.OfferedLoad(flows, r))

	th, err := core.Thresholds(specs, r, b)
	if err != nil {
		fatalf("thresholds: %v", err)
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "flow\tσ\tρ\tthreshold (B=%v)\n", b)
	for i, s := range specs {
		fmt.Fprintf(tw, "%d\t%v\t%v\t%v\n", i, s.BucketSize, s.TokenRate, th[i])
	}
	tw.Flush()

	wfqB := core.RequiredBufferWFQ(specs)
	fmt.Printf("\nminimum lossless buffer, WFQ (eq. 6):  %v\n", wfqB)
	if fifoB, err := core.RequiredBufferFIFO(specs, r); err == nil {
		fmt.Printf("minimum lossless buffer, FIFO (eq. 9): %v  (inflation 1/(1-u) = %.2f)\n",
			fifoB, core.BufferInflation(u))
	} else {
		fmt.Printf("FIFO requirement: %v\n", err)
	}

	if *optimize {
		var err error
		if len(specs) <= 12 {
			queueOf, err = core.OptimizeGroupingExhaustive(specs, *queues)
		} else {
			queueOf, err = core.OptimizeGroupingDP(specs, *queues)
		}
		if err != nil {
			fatalf("grouping: %v", err)
		}
		fmt.Printf("\noptimized grouping: %v\n", queueOf)
	}

	if *queues > 1 {
		printHybrid(specs, queueOf, *queues, r)
	}
}

// printHybrid reports the §4 analysis for a grouping: Proposition 3
// alphas, per-queue rates (eq. 16), buffers (eq. 18), total (eq. 19),
// and the savings over a single FIFO queue (eq. 17).
func printHybrid(specs []packet.FlowSpec, queueOf []int, k int, r units.Rate) {
	groups, err := core.GroupFlows(specs, queueOf, k)
	if err != nil {
		fatalf("hybrid grouping: %v", err)
	}
	alphas := core.OptimalAlphas(groups)
	rates, err := core.AllocateHybrid(r, groups)
	if err != nil {
		fmt.Printf("\nhybrid analysis skipped: %v\n", err)
		return
	}
	perQueue, err := core.HybridBufferPerQueue(r, groups)
	if err != nil {
		fatalf("hybrid buffers: %v", err)
	}
	fmt.Printf("\nhybrid system with %d queues (grouping %v):\n", k, queueOf)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "queue\tσ̂\tρ̂\tα (eq.14)\tRᵢ (eq.16)\tBᵢ (eq.18)")
	for q, g := range groups {
		fmt.Fprintf(tw, "%d\t%v\t%v\t%.4f\t%v\t%v\n", q, g.Sigma, g.Rho, alphas[q], rates[q], perQueue[q])
	}
	tw.Flush()
	total, err := core.HybridBufferTotal(r, groups)
	if err != nil {
		fatalf("hybrid total: %v", err)
	}
	savings, err := core.BufferSavings(r, groups)
	if err != nil {
		fatalf("savings: %v", err)
	}
	fmt.Printf("hybrid total buffer (eq. 19): %v\n", total)
	fmt.Printf("savings vs single FIFO (eq. 17): %v\n", savings)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "qosplan: "+format+"\n", args...)
	os.Exit(1)
}

func printCurve() {
	fmt.Println("reserved utilization u -> FIFO/WFQ buffer inflation 1/(1-u) (eq. 10)")
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "u\tinflation")
	for _, u := range []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.683, 0.7, 0.8, 0.9, 0.95, 0.99} {
		fmt.Fprintf(tw, "%.3f\t%.2f\n", u, core.BufferInflation(u))
	}
	tw.Flush()
}
