// Command qnet runs declarative multi-hop scenarios: a JSON topology
// file names links (each an independent multiplexing point built from a
// scheme-registry spec), flows with explicit routes and (σ, ρ)
// envelopes, and a timeline of events (flow churn, link rate changes,
// failures). Every flow join is gated by admission control at every
// traversed link; after the run, the per-hop guarantees are verified
// (zero conformant loss, reserved throughput end-to-end).
//
// Usage:
//
//	qnet -topology topologies/tandem3.json
//	qnet -topology topologies/churn.json -runs 5 -workers 4 -check
//	qnet -topology topologies/parkinglot.json -csv out/ -metrics m.json
//	qnet -gen "random?links=1000,flows=100000" -shards 8 -events-per-sec
//	qnet -gen "fattree?flows=512" -bench-json BENCH_topology.json
//	qnet -list-schemes
//
// Results are bit-identical for a given seed at any -workers count and
// any -shards count.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"reflect"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"time"

	"bufqos/internal/metrics"
	"bufqos/internal/report"
	"bufqos/internal/scheme"
	"bufqos/internal/topology"
)

// skipLinkFlowsAbove is the links×flows product beyond which qnet drops
// the per-link per-flow result tables (topology.Options.SkipLinkFlows):
// at 4M entries the tables alone would cost hundreds of megabytes.
const skipLinkFlowsAbove = 4 << 20

// maxWorkers clamps absurd -workers values: beyond a few times the CPU
// count extra goroutines only add scheduling overhead.
func maxWorkers() int { return 8 * runtime.GOMAXPROCS(0) }

func main() {
	var (
		topoPath    = flag.String("topology", "", "JSON scenario file (required unless -gen)")
		genSpec     = flag.String("gen", "", "generate a synthetic scenario instead, e.g. 'random?links=1000,flows=100000,seed=1'")
		duration    = flag.Float64("duration", 10, "simulated seconds per run")
		runs        = flag.Int("runs", 1, "independent replications (run r uses seed+r)")
		seed        = flag.Int64("seed", 1, "base random seed")
		workers     = flag.Int("workers", 0, "concurrent runs (0 = GOMAXPROCS, 1 = sequential; results are identical)")
		shards      = flag.Int("shards", 1, "event kernels per run, synchronized conservatively; results are identical at any count")
		csvDir      = flag.String("csv", "", "directory for per-flow and per-link CSV files (optional)")
		metricsOut  = flag.String("metrics", "", "write aggregated metrics as JSON to this file ('-' for stderr) when done")
		checkFlag   = flag.Bool("check", false, "verify the composed QoS guarantees and exit 1 on any violation")
		listSchemes = flag.Bool("list-schemes", false, "print the scheme registry catalogue and exit")
		showProgres = flag.Bool("progress", false, "report run progress on stderr")
		pprofOut    = flag.String("pprof", "", "write a CPU profile of the runs to this file")
		showRate    = flag.Bool("events-per-sec", false, "report total kernel events and wall-clock throughput on stderr")
		benchJSON   = flag.String("bench-json", "", "sweep shard counts 1/2/4/8, check bit-identity, write an events/sec benchmark JSON to this file, and exit")
	)
	flag.Parse()

	if *listSchemes {
		if err := scheme.WriteCatalogue(os.Stdout); err != nil {
			fatalf("writing catalogue: %v", err)
		}
		return
	}
	if (*topoPath == "") == (*genSpec == "") {
		fatalf("exactly one of -topology or -gen is required (or -list-schemes)")
	}
	if *workers < 0 {
		fatalf("-workers must be >= 0 (got %d)", *workers)
	}
	if *shards < 0 {
		fatalf("-shards must be >= 0 (got %d)", *shards)
	}
	if max := maxWorkers(); *workers > max {
		fmt.Fprintf(os.Stderr, "qnet: clamping -workers %d to %d (8x GOMAXPROCS)\n", *workers, max)
		*workers = max
	}

	var topo *topology.Topology
	var err error
	if *genSpec != "" {
		topo, err = topology.Generate(*genSpec)
	} else {
		topo, err = topology.Load(*topoPath)
	}
	if err != nil {
		fatalf("%v", err)
	}
	if topo.Description != "" {
		fmt.Fprintf(os.Stderr, "qnet: %s: %s\n", topo.Name, topo.Description)
	}

	opts := topology.Options{Duration: *duration, Seed: *seed, Shards: *shards}
	if len(topo.Links)*len(topo.Flows) > skipLinkFlowsAbove {
		fmt.Fprintf(os.Stderr, "qnet: %d links x %d flows: keeping link totals only (per-flow link tables skipped)\n",
			len(topo.Links), len(topo.Flows))
		opts.SkipLinkFlows = true
	}

	// Ctrl-C cancels between chunks of simulated time.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *pprofOut != "" {
		f, err := os.Create(*pprofOut)
		if err != nil {
			fatalf("creating %s: %v", *pprofOut, err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("starting CPU profile: %v", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "qnet: closing %s: %v\n", *pprofOut, err)
			}
			fmt.Fprintf(os.Stderr, "qnet: CPU profile written to %s\n", *pprofOut)
		}()
	}

	if *benchJSON != "" {
		if err := runBench(ctx, topo, opts, *benchJSON); err != nil {
			fatalf("%v", err)
		}
		return
	}

	var reg *metrics.Registry
	if *metricsOut != "" {
		reg = metrics.NewRegistry()
		opts.Metrics = reg
	}
	var onDone func(int)
	if *showProgres {
		onDone = progressPrinter(*runs)
	}

	start := time.Now()
	results, err := topology.RunMany(ctx, topo, opts, *runs, *workers, onDone)
	wall := time.Since(start)
	flushMetrics(reg, *metricsOut)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "qnet: interrupted")
			os.Exit(130)
		}
		fatalf("%v", err)
	}
	if *showRate {
		var events uint64
		for i := range results {
			events += results[i].Events
		}
		fmt.Fprintf(os.Stderr, "qnet: %d events in %v (%.4g events/sec, %d shards)\n",
			events, wall.Round(time.Millisecond), float64(events)/wall.Seconds(), *shards)
	}

	if err := topology.WriteFlowTable(os.Stdout, topo, results); err != nil {
		fatalf("%v", err)
	}
	fmt.Println()
	if err := topology.WriteLinkTable(os.Stdout, topo, results); err != nil {
		fatalf("%v", err)
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fatalf("creating %s: %v", *csvDir, err)
		}
		base := *genSpec
		if base == "" {
			base = strings.TrimSuffix(filepath.Base(*topoPath), filepath.Ext(*topoPath))
		} else {
			base = strings.NewReplacer("?", "_", "=", "-", ",", "_").Replace(base)
		}
		writeCSV(filepath.Join(*csvDir, base+"_flows.csv"), func(f *os.File) error {
			return topology.WriteFlowCSV(f, topo, results)
		})
		writeCSV(filepath.Join(*csvDir, base+"_links.csv"), func(f *os.File) error {
			return topology.WriteLinkCSV(f, topo, results)
		})
	}

	if *checkFlag {
		fmt.Println()
		as := topology.VerifyMany(topo, results)
		if failed := report.WriteAssertions(os.Stdout, as); failed > 0 {
			fatalf("%d of %d assertions failed", failed, len(as))
		}
		fmt.Printf("all %d assertions passed\n", len(as))
	}
}

// benchRun is one row of the -bench-json report.
type benchRun struct {
	Shards       int     `json:"shards"`
	Events       uint64  `json:"events"`
	WallSeconds  float64 `json:"wall_seconds"`
	EventsPerSec float64 `json:"events_per_sec"`
	Speedup      float64 `json:"speedup"`
}

// benchReport is the -bench-json output: one scenario swept over shard
// counts, with bit-identity against the single-shard run asserted.
// HostCores records the machine the numbers were taken on — a speedup
// near 1.0 on a single-core host is the expected honest result, not a
// failure of the engine.
type benchReport struct {
	Topology  string     `json:"topology"`
	Links     int        `json:"links"`
	Flows     int        `json:"flows"`
	Duration  float64    `json:"duration"`
	Seed      int64      `json:"seed"`
	HostCores int        `json:"host_cores"`
	Identical bool       `json:"identical"`
	Runs      []benchRun `json:"runs"`
}

// runBench sweeps shard counts 1, 2, 4, 8 over one run of the scenario,
// verifies every sharded Result is bit-identical to the single-shard
// one, and writes the wall-clock numbers as JSON.
func runBench(ctx context.Context, topo *topology.Topology, opts topology.Options, path string) error {
	rep := benchReport{
		Topology:  topo.Name,
		Links:     len(topo.Links),
		Flows:     len(topo.Flows),
		Duration:  opts.Duration,
		Seed:      opts.Seed,
		HostCores: runtime.NumCPU(),
		Identical: true,
	}
	var base topology.Result
	var baseWall float64
	for _, shards := range []int{1, 2, 4, 8} {
		o := opts
		o.Shards = shards
		start := time.Now()
		res, err := topology.Run(ctx, topo, o)
		wall := time.Since(start).Seconds()
		if err != nil {
			return fmt.Errorf("bench shards=%d: %w", shards, err)
		}
		if shards == 1 {
			base, baseWall = res, wall
		} else if !reflect.DeepEqual(base, res) {
			rep.Identical = false
		}
		rep.Runs = append(rep.Runs, benchRun{
			Shards:       shards,
			Events:       res.Events,
			WallSeconds:  wall,
			EventsPerSec: float64(res.Events) / wall,
			Speedup:      baseWall / wall,
		})
		fmt.Fprintf(os.Stderr, "qnet: bench shards=%d: %d events in %.3fs (%.4g events/sec)\n",
			shards, res.Events, wall, float64(res.Events)/wall)
	}
	if !rep.Identical {
		return fmt.Errorf("bench: sharded results diverge from shards=1 — determinism bug")
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("creating %s: %w", path, err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return fmt.Errorf("writing %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("closing %s: %w", path, err)
	}
	fmt.Fprintf(os.Stderr, "qnet: benchmark written to %s\n", path)
	return nil
}

func writeCSV(path string, write func(*os.File) error) {
	f, err := os.Create(path)
	if err != nil {
		fatalf("creating %s: %v", path, err)
	}
	if err := write(f); err != nil {
		f.Close()
		fatalf("writing %s: %v", path, err)
	}
	if err := f.Close(); err != nil {
		fatalf("closing %s: %v", path, err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
}

// progressPrinter returns an onDone callback that rewrites one stderr
// line. It arrives concurrently from pool workers, so it serializes
// with a mutex.
func progressPrinter(total int) func(int) {
	var mu sync.Mutex
	done := 0
	start := time.Now()
	return func(int) {
		mu.Lock()
		defer mu.Unlock()
		done++
		fmt.Fprintf(os.Stderr, "\rqnet: %d/%d runs (%s elapsed)   ",
			done, total, time.Since(start).Round(time.Second))
		if done == total {
			fmt.Fprintln(os.Stderr)
		}
	}
}

// flushMetrics writes the aggregated registry as JSON to path ("-" for
// stderr), even after an interrupt.
func flushMetrics(reg *metrics.Registry, path string) {
	if reg == nil || path == "" {
		return
	}
	if path == "-" {
		if err := reg.Snapshot().WriteJSON(os.Stderr); err != nil {
			fmt.Fprintf(os.Stderr, "qnet: writing metrics: %v\n", err)
		}
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qnet: creating %s: %v\n", path, err)
		return
	}
	if err := reg.Snapshot().WriteJSON(f); err != nil {
		fmt.Fprintf(os.Stderr, "qnet: writing %s: %v\n", path, err)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "qnet: closing %s: %v\n", path, err)
	}
	fmt.Fprintf(os.Stderr, "qnet: metrics written to %s\n", path)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "qnet: "+format+"\n", args...)
	os.Exit(1)
}
