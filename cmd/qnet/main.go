// Command qnet runs declarative multi-hop scenarios: a JSON topology
// file names links (each an independent multiplexing point built from a
// scheme-registry spec), flows with explicit routes and (σ, ρ)
// envelopes, and a timeline of events (flow churn, link rate changes,
// failures). Every flow join is gated by admission control at every
// traversed link; after the run, the per-hop guarantees are verified
// (zero conformant loss, reserved throughput end-to-end).
//
// Usage:
//
//	qnet -topology topologies/tandem3.json
//	qnet -topology topologies/churn.json -runs 5 -workers 4 -check
//	qnet -topology topologies/parkinglot.json -csv out/ -metrics m.json
//	qnet -list-schemes
//
// Results are bit-identical for a given seed at any -workers count.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"bufqos/internal/metrics"
	"bufqos/internal/report"
	"bufqos/internal/scheme"
	"bufqos/internal/topology"
)

// maxWorkers clamps absurd -workers values: beyond a few times the CPU
// count extra goroutines only add scheduling overhead.
func maxWorkers() int { return 8 * runtime.GOMAXPROCS(0) }

func main() {
	var (
		topoPath    = flag.String("topology", "", "JSON scenario file (required)")
		duration    = flag.Float64("duration", 10, "simulated seconds per run")
		runs        = flag.Int("runs", 1, "independent replications (run r uses seed+r)")
		seed        = flag.Int64("seed", 1, "base random seed")
		workers     = flag.Int("workers", 0, "concurrent runs (0 = GOMAXPROCS, 1 = sequential; results are identical)")
		csvDir      = flag.String("csv", "", "directory for per-flow and per-link CSV files (optional)")
		metricsOut  = flag.String("metrics", "", "write aggregated metrics as JSON to this file ('-' for stderr) when done")
		checkFlag   = flag.Bool("check", false, "verify the composed QoS guarantees and exit 1 on any violation")
		listSchemes = flag.Bool("list-schemes", false, "print the scheme registry catalogue and exit")
		showProgres = flag.Bool("progress", false, "report run progress on stderr")
	)
	flag.Parse()

	if *listSchemes {
		if err := scheme.WriteCatalogue(os.Stdout); err != nil {
			fatalf("writing catalogue: %v", err)
		}
		return
	}
	if *topoPath == "" {
		fatalf("-topology is required (or -list-schemes)")
	}
	if *workers < 0 {
		fatalf("-workers must be >= 0 (got %d)", *workers)
	}
	if max := maxWorkers(); *workers > max {
		fmt.Fprintf(os.Stderr, "qnet: clamping -workers %d to %d (8x GOMAXPROCS)\n", *workers, max)
		*workers = max
	}

	topo, err := topology.Load(*topoPath)
	if err != nil {
		fatalf("%v", err)
	}
	if topo.Description != "" {
		fmt.Fprintf(os.Stderr, "qnet: %s: %s\n", topo.Name, topo.Description)
	}

	opts := topology.Options{Duration: *duration, Seed: *seed}
	var reg *metrics.Registry
	if *metricsOut != "" {
		reg = metrics.NewRegistry()
		opts.Metrics = reg
	}
	var onDone func(int)
	if *showProgres {
		onDone = progressPrinter(*runs)
	}

	// Ctrl-C cancels between chunks of simulated time.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	results, err := topology.RunMany(ctx, topo, opts, *runs, *workers, onDone)
	flushMetrics(reg, *metricsOut)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "qnet: interrupted")
			os.Exit(130)
		}
		fatalf("%v", err)
	}

	if err := topology.WriteFlowTable(os.Stdout, topo, results); err != nil {
		fatalf("%v", err)
	}
	fmt.Println()
	if err := topology.WriteLinkTable(os.Stdout, topo, results); err != nil {
		fatalf("%v", err)
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fatalf("creating %s: %v", *csvDir, err)
		}
		base := strings.TrimSuffix(filepath.Base(*topoPath), filepath.Ext(*topoPath))
		writeCSV(filepath.Join(*csvDir, base+"_flows.csv"), func(f *os.File) error {
			return topology.WriteFlowCSV(f, topo, results)
		})
		writeCSV(filepath.Join(*csvDir, base+"_links.csv"), func(f *os.File) error {
			return topology.WriteLinkCSV(f, topo, results)
		})
	}

	if *checkFlag {
		fmt.Println()
		as := topology.VerifyMany(topo, results)
		if failed := report.WriteAssertions(os.Stdout, as); failed > 0 {
			fatalf("%d of %d assertions failed", failed, len(as))
		}
		fmt.Printf("all %d assertions passed\n", len(as))
	}
}

func writeCSV(path string, write func(*os.File) error) {
	f, err := os.Create(path)
	if err != nil {
		fatalf("creating %s: %v", path, err)
	}
	if err := write(f); err != nil {
		f.Close()
		fatalf("writing %s: %v", path, err)
	}
	if err := f.Close(); err != nil {
		fatalf("closing %s: %v", path, err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
}

// progressPrinter returns an onDone callback that rewrites one stderr
// line. It arrives concurrently from pool workers, so it serializes
// with a mutex.
func progressPrinter(total int) func(int) {
	var mu sync.Mutex
	done := 0
	start := time.Now()
	return func(int) {
		mu.Lock()
		defer mu.Unlock()
		done++
		fmt.Fprintf(os.Stderr, "\rqnet: %d/%d runs (%s elapsed)   ",
			done, total, time.Since(start).Round(time.Second))
		if done == total {
			fmt.Fprintln(os.Stderr)
		}
	}
}

// flushMetrics writes the aggregated registry as JSON to path ("-" for
// stderr), even after an interrupt.
func flushMetrics(reg *metrics.Registry, path string) {
	if reg == nil || path == "" {
		return
	}
	if path == "-" {
		if err := reg.Snapshot().WriteJSON(os.Stderr); err != nil {
			fmt.Fprintf(os.Stderr, "qnet: writing metrics: %v\n", err)
		}
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qnet: creating %s: %v\n", path, err)
		return
	}
	if err := reg.Snapshot().WriteJSON(f); err != nil {
		fmt.Fprintf(os.Stderr, "qnet: writing %s: %v\n", path, err)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "qnet: closing %s: %v\n", path, err)
	}
	fmt.Fprintf(os.Stderr, "qnet: metrics written to %s\n", path)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "qnet: "+format+"\n", args...)
	os.Exit(1)
}
