// Command qtrace runs a single Table 1 scenario and emits time series
// of the simulation's internal state — per-flow buffer occupancy and,
// for the sharing schemes, the holes/headroom pool levels — as CSV.
// It makes the §2 dynamics (a greedy flow pinned at its threshold, a
// conformant flow's occupancy converging from below) and the §3.3 pool
// mechanics directly visible.
//
// The -scheme flag accepts any scheme-registry spec (see -list-schemes);
// the bare manager names "threshold" and "sharing" keep working and mean
// FIFO scheduling, as before.
//
//	qtrace -scheme sharing -buffer 1 -headroom 0.25 > trace.csv
//	qtrace -scheme wfq+sharing > trace.csv
//	qtrace -scheme fifo+red?min=0.2,max=0.8 > trace.csv
//	qtrace -scheme threshold -example1 > example1.csv
//	qtrace -scheme sharing -metrics metrics.csv > trace.csv
//
// With -metrics, the run's counters and gauges (event kernel, buffer
// accepts/drops, scheduler service counts) are additionally sampled on
// the same interval and written as a second CSV time series.
package main

import (
	"flag"
	"fmt"
	"os"

	"strings"

	"bufqos/internal/buffer"
	"bufqos/internal/core"
	"bufqos/internal/experiment"
	"bufqos/internal/metrics"
	"bufqos/internal/sched"
	"bufqos/internal/scheme"
	"bufqos/internal/sim"
	"bufqos/internal/source"
	"bufqos/internal/trace"
	"bufqos/internal/units"
)

func main() {
	var (
		schemeF  = flag.String("scheme", "threshold", "scheme-registry spec, e.g. threshold, sharing, wfq+sharing, fifo+red?min=0.2")
		bufferMB = flag.Float64("buffer", 1, "total buffer in MB")
		headMB   = flag.Float64("headroom", 0.25, "sharing headroom in MB")
		duration = flag.Float64("duration", 5, "simulated seconds")
		interval = flag.Float64("interval", 0.005, "sample interval in seconds")
		seed     = flag.Int64("seed", 1, "random seed")
		example1 = flag.Bool("example1", false, "trace the Example 1 scenario (CBR vs feedback-greedy) instead of Table 1")
		metricsF = flag.String("metrics", "", "also sample run metrics every interval and write them as CSV to this file")
		listSch  = flag.Bool("list-schemes", false, "print the scheme registry catalogue and exit")
	)
	flag.Parse()

	if *listSch {
		if err := scheme.WriteCatalogue(os.Stdout); err != nil {
			fatalf("writing catalogue: %v", err)
		}
		return
	}

	s := sim.New()
	linkRate := experiment.DefaultLinkRate
	bufSize := units.MegaBytes(*bufferMB)

	var mgr buffer.Manager
	var labels []string
	var probe func() []float64
	var reg *metrics.Registry
	if *metricsF != "" {
		reg = metrics.NewRegistry()
		s.Instrument(reg)
	}
	// instrument wires the built manager and link into reg (no-op
	// without -metrics).
	instrument := func(link *sched.Link, label string) {
		if reg == nil {
			return
		}
		if in, ok := mgr.(buffer.Instrumentable); ok {
			in.Instrument(reg, "buffer")
		}
		link.Instrument(reg, label)
	}

	if *example1 {
		// Two flows: conformant CBR at 8 Mb/s vs the greedy adversary.
		rho := units.MbitsPerSecond(8)
		th := core.PeakRateThreshold(rho, linkRate, bufSize)
		fixed := buffer.NewFixedThreshold(bufSize, []units.Bytes{th + 500, bufSize - th - 500})
		mgr = fixed
		link := sched.NewLink(s, linkRate, sched.NewFIFO(), mgr, nil)
		instrument(link, "example1")
		g := source.NewFeedbackGreedy(s, 1, 500, mgr, link)
		link.OnDepart = g.DepartureHook()
		g.Kick()
		src := source.NewCBR(s, 0, 500, rho, link)
		src.Start()
		labels = []string{"q_conformant", "q_greedy", "threshold_conformant"}
		probe = func() []float64 {
			return []float64{
				float64(mgr.Occupancy(0)),
				float64(mgr.Occupancy(1)),
				float64(th),
			}
		}
	} else {
		flows := experiment.Table1Flows()
		sc, err := scheme.Parse(*schemeF)
		if err != nil {
			fatalf("%v\navailable specs: %s\n(see -list-schemes for parameters)",
				err, strings.Join(scheme.Specs(), ", "))
		}
		adaptive := make([]bool, len(flows))
		for i, f := range flows {
			adaptive[i] = f.Conformance != experiment.Aggressive
		}
		var scheduler sched.Scheduler
		mgr, scheduler, err = sc.Build(scheme.Config{
			Specs:    experiment.Specs(flows),
			LinkRate: linkRate,
			Buffer:   bufSize,
			Headroom: units.MegaBytes(*headMB),
			QueueOf:  experiment.Table1QueueOf(),
			Adaptive: adaptive,
			Now:      s.Now,
			Seed:     *seed,
		})
		if err != nil {
			fatalf("building %s: %v", sc.Spec(), err)
		}
		// Occupancy columns for every flow; sharing-family managers
		// additionally expose their holes/headroom pool levels.
		labels = occupancyLabels(len(flows))
		switch m := mgr.(type) {
		case *buffer.Sharing:
			labels = append(labels, "holes", "headroom")
			probe = occupancyProbe(mgr, len(flows), func() []float64 {
				return []float64{float64(m.Holes()), float64(m.Headroom())}
			})
		case *buffer.AdaptiveSharing:
			labels = append(labels, "holes", "headroom")
			probe = occupancyProbe(mgr, len(flows), func() []float64 {
				return []float64{float64(m.Holes()), float64(m.Headroom())}
			})
		default:
			probe = occupancyProbe(mgr, len(flows), nil)
		}
		link := sched.NewLink(s, linkRate, scheduler, mgr, nil)
		instrument(link, sc.String())
		for i, f := range flows {
			rng := sim.NewRand(sim.DeriveSeed(*seed, i))
			var sink source.Sink = link
			if f.Regulated() {
				sink = source.NewShaper(s, f.Spec, link)
			} else {
				sink = source.NewMeter(s, f.Spec, link)
			}
			src := source.NewOnOff(s, rng, source.OnOffConfig{
				Flow: i, PacketSize: experiment.DefaultPacketSize,
				PeakRate: f.Spec.PeakRate, AvgRate: f.AvgRate, MeanBurst: f.MeanBurst,
			}, sink)
			src.Start()
		}
	}

	sa := trace.NewSampler(s, *interval, labels, probe)
	sa.Start()
	var msa *trace.Sampler
	if reg != nil {
		msa = trace.NewMetricsSampler(s, *interval, reg, reg.Names())
		msa.Start()
	}
	s.RunUntil(*duration)
	if err := sa.WriteCSV(os.Stdout); err != nil {
		fatalf("writing csv: %v", err)
	}
	if msa != nil {
		f, err := os.Create(*metricsF)
		if err != nil {
			fatalf("creating %s: %v", *metricsF, err)
		}
		if err := msa.WriteCSV(f); err != nil {
			f.Close()
			fatalf("writing %s: %v", *metricsF, err)
		}
		if err := f.Close(); err != nil {
			fatalf("closing %s: %v", *metricsF, err)
		}
	}
}

func occupancyLabels(n int) []string {
	labels := make([]string, n)
	for i := range labels {
		labels[i] = fmt.Sprintf("q%d", i)
	}
	return labels
}

func occupancyProbe(mgr buffer.Manager, n int, extra func() []float64) func() []float64 {
	return func() []float64 {
		row := make([]float64, 0, n+2)
		for i := 0; i < n; i++ {
			row = append(row, float64(mgr.Occupancy(i)))
		}
		if extra != nil {
			row = append(row, extra()...)
		}
		return row
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "qtrace: "+format+"\n", args...)
	os.Exit(1)
}
