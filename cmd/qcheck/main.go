// Command qcheck regenerates the paper's figures and verifies every
// codified shape claim (see internal/report). It exits non-zero when
// any claim fails — the repository's reproduction regression gate.
//
//	qcheck                 # full scale (5 runs × 20 s, slow)
//	qcheck -quick          # 1 run × 4 s, coarse sweep (~1 min)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"bufqos/internal/experiment"
	"bufqos/internal/report"
	"bufqos/internal/scheme"
	"bufqos/internal/units"
)

func main() {
	var (
		quick    = flag.Bool("quick", false, "reduced-scale sweep for fast feedback")
		runs     = flag.Int("runs", 0, "override replication count")
		duration = flag.Float64("duration", 0, "override simulated seconds")
		listSch  = flag.Bool("list-schemes", false, "print the scheme registry catalogue and exit")
	)
	flag.Parse()

	if *listSch {
		if err := scheme.WriteCatalogue(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "qcheck: writing catalogue: %v\n", err)
			os.Exit(2)
		}
		return
	}

	var opts *experiment.Options
	if *quick {
		opts = &experiment.Options{
			Runs:        1,
			Duration:    6,
			BufferSizes: []units.Bytes{units.KiloBytes(500), units.MegaBytes(1), units.MegaBytes(2)},
			Headrooms:   []units.Bytes{0, units.KiloBytes(150), units.KiloBytes(300)},
			Headroom:    units.KiloBytes(500),
			Fig7Buffer:  units.KiloBytes(250),
		}
		experiment.WithWarmup(0.6)(opts)
		experiment.WithSeed(5)(opts)
	} else {
		// Full scale, but a small-buffer fig7 so the headroom effect is
		// on-scale (see EXPERIMENTS.md).
		opts = experiment.NewOptions(experiment.WithFig7Buffer(units.KiloBytes(300)))
	}
	if *runs > 0 {
		opts.Runs = *runs
	}
	if *duration > 0 {
		opts.Duration = *duration
		experiment.WithWarmup(*duration / 10)(opts)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	results, err := report.Run(ctx, opts, os.Stdout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qcheck: %v\n", err)
		os.Exit(2)
	}
	failed := 0
	for _, r := range results {
		if r.Err != nil {
			failed++
		}
	}
	fmt.Printf("\n%d checks, %d failed\n", len(results), failed)
	if failed > 0 {
		os.Exit(1)
	}
}
