// Command qfuzz runs property-based validation campaigns: it generates
// seeded random scenarios (single links, tandem paths, admission
// churn, scheme-registry sweeps, fluid-differential workloads), runs
// each through the multi-hop simulator, and checks the outcomes
// against the paper's invariant oracles (zero conformant loss at the
// Proposition 1/2 thresholds, byte conservation, reserved throughput,
// admission monotonicity, threshold necessity, eq. 17 hybrid savings,
// fluid-vs-packet agreement). Failing scenarios are shrunk to minimal
// reproducer JSON files replayable with `qnet -topology <file> -check`.
//
// Usage:
//
//	qfuzz -n 200 -seed 1
//	qfuzz -n 50 -duration 2s -workers 4 -out testdata/repros
//	qfuzz -n 20 -oracle zero-conformant-loss,conservation
//	qfuzz -n 10 -threshold-scale 0.9 -out /tmp/repros   # must fail
//	qfuzz -list-oracles
//
// Results are bit-identical for a given seed at any -workers count.
// Exit status: 0 all oracles held, 1 violations found, 130 interrupted.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"sync"
	"time"

	"bufqos/internal/validate"
)

func main() {
	var (
		n           = flag.Int("n", 100, "number of scenarios to generate and check")
		seed        = flag.Int64("seed", 1, "campaign seed (case i uses a seed derived from it)")
		duration    = flag.Duration("duration", 2*time.Second, "simulated horizon per scenario (>= 2s recommended)")
		workers     = flag.Int("workers", 0, "concurrent cases (0 = GOMAXPROCS; results are identical)")
		oracleList  = flag.String("oracle", "", "comma-separated oracle names to run (default: all)")
		outDir      = flag.String("out", "testdata/repros", "directory for shrunk reproducer JSON files ('' disables)")
		scale       = flag.Float64("threshold-scale", 1, "scale Prop 1/2 thresholds by this factor; <1 generates deliberately broken scenarios")
		listOracles = flag.Bool("list-oracles", false, "print the oracle catalogue and exit")
		progress    = flag.Bool("progress", false, "report case progress on stderr")
	)
	flag.Parse()

	if *listOracles {
		for _, o := range validate.Oracles() {
			fmt.Printf("%-24s %s\n%-24s %s\n", o.Name, o.Doc, "", o.Citation)
		}
		return
	}
	if *n <= 0 {
		fatalf("-n must be positive (got %d)", *n)
	}
	if *duration < 500*time.Millisecond {
		fatalf("-duration must be at least 500ms (got %v)", *duration)
	}

	opts := validate.Options{
		Cases:          *n,
		Seed:           *seed,
		Duration:       duration.Seconds(),
		Workers:        *workers,
		ReproDir:       *outDir,
		ThresholdScale: *scale,
	}
	if *oracleList != "" {
		opts.Oracles = strings.Split(*oracleList, ",")
	}
	if *progress {
		opts.OnDone = progressPrinter(*n)
	}

	// Ctrl-C stops cleanly: finished cases are still summarized.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	sum, err := validate.Fuzz(ctx, opts)
	if err != nil && !errors.Is(err, context.Canceled) {
		fatalf("%v", err)
	}
	validate.WriteSummary(os.Stdout, sum)
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "qfuzz: interrupted; partial summary above")
		os.Exit(130)
	}
	if len(sum.FailedCases()) > 0 {
		os.Exit(1)
	}
}

// progressPrinter returns an onDone callback that rewrites one stderr
// line; it serializes concurrent worker callbacks with a mutex.
func progressPrinter(total int) func(int) {
	var mu sync.Mutex
	done := 0
	start := time.Now()
	return func(int) {
		mu.Lock()
		defer mu.Unlock()
		done++
		fmt.Fprintf(os.Stderr, "\rqfuzz: %d/%d cases (%s elapsed)   ",
			done, total, time.Since(start).Round(time.Second))
		if done == total {
			fmt.Fprintln(os.Stderr)
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "qfuzz: "+format+"\n", args...)
	os.Exit(1)
}
