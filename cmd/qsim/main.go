// Command qsim regenerates the paper's simulation figures.
//
// Usage:
//
//	qsim -fig fig1            # one figure, text table to stdout
//	qsim -fig all -csv out/   # everything, CSVs into out/
//	qsim -fig fig4 -runs 3 -duration 10
//	qsim -fig fig1 -progress -metrics metrics.json -pprof localhost:6060
//
// Each figure sweeps the total buffer size (or, for fig7, the headroom)
// across the schemes the paper compares, averaging over independent
// replications and reporting 95% confidence half-widths.
//
// Interrupting qsim (Ctrl-C) cancels the in-flight sweep: runs stop
// within about one run's simulated duration, and the partial figure
// (points summarizing only their completed replications) plus the
// -metrics dump are still written before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"bufqos/internal/experiment"
	"bufqos/internal/metrics"
	"bufqos/internal/scheme"
	"bufqos/internal/units"
)

// maxWorkers clamps absurd -workers values: beyond a few times the CPU
// count extra goroutines only add scheduling overhead.
func maxWorkers() int { return 8 * runtime.GOMAXPROCS(0) }

func main() {
	var (
		figFlag     = flag.String("fig", "all", "figure id (fig1..fig13), comma list, or 'all'")
		runs        = flag.Int("runs", 5, "independent replications per point")
		duration    = flag.Float64("duration", 20, "simulated seconds per run")
		warmup      = flag.Float64("warmup", 2, "discarded warm-up seconds")
		seed        = flag.Int64("seed", 1, "base random seed")
		headroom    = flag.Float64("headroom", 2, "sharing headroom H in MB")
		buffers     = flag.String("buffers", "", "comma-separated buffer sizes in KB (default 500..5000 step 500)")
		csvDir      = flag.String("csv", "", "directory to write per-figure CSV files (optional)")
		fig7buf     = flag.Float64("fig7buffer", 1, "fixed buffer for the fig7 headroom sweep, MB")
		workload    = flag.String("workload", "", "JSON workload file: run a custom buffer sweep instead of the paper figures")
		schemes     = flag.String("schemes", "", "comma list of scheme specs for -workload sweeps, e.g. 'fifo+threshold,wfq+sharing,hybrid:2+sharing' (default: the workload's own schemes, else fifo+threshold,wfq+threshold,fifo+none)")
		listSchemes = flag.Bool("list-schemes", false, "print the scheme registry catalogue and exit")
		workers     = flag.Int("workers", 0, "concurrent simulation runs (0 = GOMAXPROCS, 1 = sequential; results are identical)")
		metricsOut  = flag.String("metrics", "", "write aggregated metrics as JSON to this file ('-' for stderr) when done")
		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
		showProgres = flag.Bool("progress", false, "report sweep progress (runs done/total, ETA) on stderr")
	)
	flag.Parse()

	if *listSchemes {
		if err := scheme.WriteCatalogue(os.Stdout); err != nil {
			fatalf("writing catalogue: %v", err)
		}
		return
	}
	if *workers < 0 {
		fatalf("-workers must be >= 0 (got %d)", *workers)
	}
	if max := maxWorkers(); *workers > max {
		fmt.Fprintf(os.Stderr, "qsim: clamping -workers %d to %d (8x GOMAXPROCS)\n", *workers, max)
		*workers = max
	}
	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "qsim: pprof server: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "qsim: pprof at http://%s/debug/pprof/\n", *pprofAddr)
	}

	// Ctrl-C cancels the sweep; partial results and metrics still flush.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	opts := experiment.NewOptions(
		experiment.WithRuns(*runs),
		experiment.WithDuration(*duration),
		experiment.WithWarmup(*warmup),
		experiment.WithSeed(*seed),
		experiment.WithHeadroom(units.MegaBytes(*headroom)),
		experiment.WithFig7Buffer(units.MegaBytes(*fig7buf)),
		experiment.WithWorkers(*workers),
	)
	var reg *metrics.Registry
	if *metricsOut != "" {
		reg = metrics.NewRegistry()
		opts.Metrics = reg
	}
	if *showProgres {
		opts.Progress = progressPrinter()
	}
	if *buffers != "" {
		for _, part := range strings.Split(*buffers, ",") {
			var kb float64
			if _, err := fmt.Sscanf(strings.TrimSpace(part), "%g", &kb); err != nil {
				fatalf("bad -buffers entry %q: %v", part, err)
			}
			opts.BufferSizes = append(opts.BufferSizes, units.KiloBytes(kb))
		}
	}

	interrupted := false
	defer func() {
		flushMetrics(reg, *metricsOut)
		if interrupted {
			fmt.Fprintln(os.Stderr, "qsim: interrupted; partial results written")
			os.Exit(130)
		}
	}()

	if *workload != "" {
		interrupted = runWorkloadSweep(ctx, *workload, *schemes, opts, *csvDir)
		return
	}

	var ids []string
	if *figFlag == "all" {
		ids = experiment.FigureIDs()
	} else {
		for _, id := range strings.Split(*figFlag, ",") {
			id = strings.TrimSpace(id)
			if _, ok := experiment.Figures[id]; !ok {
				fatalf("unknown figure %q; known: %s", id, strings.Join(experiment.FigureIDs(), " "))
			}
			ids = append(ids, id)
		}
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fatalf("creating %s: %v", *csvDir, err)
		}
	}

	for _, id := range ids {
		fig, err := experiment.Figures[id](ctx, opts)
		if err != nil && !errors.Is(err, context.Canceled) {
			fatalf("%s: %v", id, err)
		}
		writeFigure(fig, *csvDir)
		if err != nil {
			interrupted = true
			return
		}
	}
}

// writeFigure emits one figure as a stdout table and, optionally, a CSV
// file. Used for complete and partial (interrupted) figures alike.
func writeFigure(fig experiment.Figure, csvDir string) {
	if err := experiment.WriteTable(os.Stdout, fig); err != nil {
		fatalf("writing table: %v", err)
	}
	fmt.Println()
	if csvDir != "" {
		path := filepath.Join(csvDir, fig.ID+".csv")
		f, err := os.Create(path)
		if err != nil {
			fatalf("creating %s: %v", path, err)
		}
		if err := experiment.WriteCSV(f, fig); err != nil {
			f.Close()
			fatalf("writing %s: %v", path, err)
		}
		if err := f.Close(); err != nil {
			fatalf("closing %s: %v", path, err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}
}

// progressPrinter returns a ProgressFunc that rewrites one stderr line,
// throttled to 10 updates/s. The callback arrives concurrently from
// pool workers, so it serializes with a mutex.
func progressPrinter() experiment.ProgressFunc {
	var mu sync.Mutex
	var lastPrint time.Time
	return func(p experiment.Progress) {
		mu.Lock()
		defer mu.Unlock()
		now := time.Now()
		if p.Done < p.Total && now.Sub(lastPrint) < 100*time.Millisecond {
			return
		}
		lastPrint = now
		eta := ""
		if p.Remaining > 0 {
			eta = fmt.Sprintf(", ETA %s", p.Remaining.Round(time.Second))
		}
		fmt.Fprintf(os.Stderr, "\rqsim: %d/%d runs (%s elapsed%s)   ",
			p.Done, p.Total, p.Elapsed.Round(time.Second), eta)
		if p.Done == p.Total {
			fmt.Fprintln(os.Stderr)
		}
	}
}

// flushMetrics writes the aggregated registry as JSON to path ("-" for
// stderr). It runs even after an interrupt so partial sweeps still
// leave their telemetry behind.
func flushMetrics(reg *metrics.Registry, path string) {
	if reg == nil || path == "" {
		return
	}
	if path == "-" {
		if err := reg.Snapshot().WriteJSON(os.Stderr); err != nil {
			fmt.Fprintf(os.Stderr, "qsim: writing metrics: %v\n", err)
		}
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qsim: creating %s: %v\n", path, err)
		return
	}
	if err := reg.Snapshot().WriteJSON(f); err != nil {
		fmt.Fprintf(os.Stderr, "qsim: writing %s: %v\n", path, err)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "qsim: closing %s: %v\n", path, err)
	}
	fmt.Fprintf(os.Stderr, "qsim: metrics written to %s\n", path)
}

// runWorkloadSweep loads a JSON workload and runs the fig1/fig2-style
// buffer sweep over the requested schemes. It reports whether the sweep
// was interrupted.
func runWorkloadSweep(ctx context.Context, path, schemeList string, opts *experiment.Options, csvDir string) bool {
	f, err := os.Open(path)
	if err != nil {
		fatalf("opening workload: %v", err)
	}
	w, err := experiment.ParseWorkload(f)
	f.Close()
	if err != nil {
		fatalf("%v", err)
	}
	// An empty -schemes defers to the workload's own scheme list (then
	// the built-in default) inside SweepWorkload.
	var specs []string
	if schemeList != "" {
		for _, name := range strings.Split(schemeList, ",") {
			spec := strings.TrimSpace(name)
			if _, err := experiment.ParseScheme(spec); err != nil {
				fatalf("%v\navailable specs: %s\n(see -list-schemes for parameters)",
					err, strings.Join(experiment.SchemeSpecs(), ", "))
			}
			specs = append(specs, spec)
		}
	}
	if csvDir != "" {
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			fatalf("creating %s: %v", csvDir, err)
		}
	}
	util, loss, err := experiment.SweepWorkload(ctx, w, specs, opts)
	interrupted := errors.Is(err, context.Canceled)
	if err != nil && !interrupted {
		fatalf("sweep: %v", err)
	}
	for _, fig := range []experiment.Figure{util, loss} {
		if len(fig.Series) == 0 {
			continue
		}
		writeFigure(fig, csvDir)
	}
	return interrupted
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "qsim: "+format+"\n", args...)
	os.Exit(1)
}
