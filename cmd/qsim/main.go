// Command qsim regenerates the paper's simulation figures.
//
// Usage:
//
//	qsim -fig fig1            # one figure, text table to stdout
//	qsim -fig all -csv out/   # everything, CSVs into out/
//	qsim -fig fig4 -runs 3 -duration 10
//
// Each figure sweeps the total buffer size (or, for fig7, the headroom)
// across the schemes the paper compares, averaging over independent
// replications and reporting 95% confidence half-widths.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"bufqos/internal/experiment"
	"bufqos/internal/units"
)

func main() {
	var (
		figFlag  = flag.String("fig", "all", "figure id (fig1..fig13), comma list, or 'all'")
		runs     = flag.Int("runs", 5, "independent replications per point")
		duration = flag.Float64("duration", 20, "simulated seconds per run")
		warmup   = flag.Float64("warmup", 2, "discarded warm-up seconds")
		seed     = flag.Int64("seed", 1, "base random seed")
		headroom = flag.Float64("headroom", 2, "sharing headroom H in MB")
		buffers  = flag.String("buffers", "", "comma-separated buffer sizes in KB (default 500..5000 step 500)")
		csvDir   = flag.String("csv", "", "directory to write per-figure CSV files (optional)")
		fig7buf  = flag.Float64("fig7buffer", 1, "fixed buffer for the fig7 headroom sweep, MB")
		workload = flag.String("workload", "", "JSON workload file: run a custom buffer sweep instead of the paper figures")
		schemes  = flag.String("schemes", "FIFO+thresholds,WFQ+thresholds,FIFO", "schemes for -workload sweeps (comma list of names)")
		workers  = flag.Int("workers", 0, "concurrent simulation runs (0 = GOMAXPROCS, 1 = sequential; results are identical)")
	)
	flag.Parse()

	opts := experiment.RunOpts{
		Runs:       *runs,
		Duration:   *duration,
		Warmup:     *warmup,
		BaseSeed:   *seed,
		Headroom:   units.MegaBytes(*headroom),
		Fig7Buffer: units.MegaBytes(*fig7buf),
		Workers:    *workers,
	}
	if opts.Warmup == 0 {
		opts.WarmupSet = true // -warmup 0 means "no warmup", not "default"
	}
	if *buffers != "" {
		for _, part := range strings.Split(*buffers, ",") {
			var kb float64
			if _, err := fmt.Sscanf(strings.TrimSpace(part), "%g", &kb); err != nil {
				fatalf("bad -buffers entry %q: %v", part, err)
			}
			opts.BufferSizes = append(opts.BufferSizes, units.KiloBytes(kb))
		}
	}

	if *workload != "" {
		runWorkloadSweep(*workload, *schemes, opts, *csvDir)
		return
	}

	var ids []string
	if *figFlag == "all" {
		ids = experiment.FigureIDs()
	} else {
		for _, id := range strings.Split(*figFlag, ",") {
			id = strings.TrimSpace(id)
			if _, ok := experiment.Figures[id]; !ok {
				fatalf("unknown figure %q; known: %s", id, strings.Join(experiment.FigureIDs(), " "))
			}
			ids = append(ids, id)
		}
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fatalf("creating %s: %v", *csvDir, err)
		}
	}

	for _, id := range ids {
		fig, err := experiment.Figures[id](opts)
		if err != nil {
			fatalf("%s: %v", id, err)
		}
		if err := experiment.WriteTable(os.Stdout, fig); err != nil {
			fatalf("writing table: %v", err)
		}
		fmt.Println()
		if *csvDir != "" {
			path := filepath.Join(*csvDir, fig.ID+".csv")
			f, err := os.Create(path)
			if err != nil {
				fatalf("creating %s: %v", path, err)
			}
			if err := experiment.WriteCSV(f, fig); err != nil {
				f.Close()
				fatalf("writing %s: %v", path, err)
			}
			if err := f.Close(); err != nil {
				fatalf("closing %s: %v", path, err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
	}
}

// runWorkloadSweep loads a JSON workload and runs the fig1/fig2-style
// buffer sweep over the requested schemes.
func runWorkloadSweep(path, schemeList string, opts experiment.RunOpts, csvDir string) {
	f, err := os.Open(path)
	if err != nil {
		fatalf("opening workload: %v", err)
	}
	w, err := experiment.ParseWorkload(f)
	f.Close()
	if err != nil {
		fatalf("%v", err)
	}
	var schemes []experiment.Scheme
	for _, name := range strings.Split(schemeList, ",") {
		s, err := experiment.SchemeByName(strings.TrimSpace(name))
		if err != nil {
			fatalf("%v", err)
		}
		schemes = append(schemes, s)
	}
	util, loss, err := experiment.SweepWorkload(w, schemes, opts)
	if err != nil {
		fatalf("sweep: %v", err)
	}
	for _, fig := range []experiment.Figure{util, loss} {
		if err := experiment.WriteTable(os.Stdout, fig); err != nil {
			fatalf("writing table: %v", err)
		}
		fmt.Println()
		if csvDir != "" {
			path := filepath.Join(csvDir, fig.ID+".csv")
			out, err := os.Create(path)
			if err != nil {
				fatalf("creating %s: %v", path, err)
			}
			if err := experiment.WriteCSV(out, fig); err != nil {
				out.Close()
				fatalf("writing %s: %v", path, err)
			}
			out.Close()
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "qsim: "+format+"\n", args...)
	os.Exit(1)
}
