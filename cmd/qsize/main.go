// Command qsize maps the buffer-sizing plane: n closed-loop TCP flows
// (or an open-loop (σ,ρ) on-off population) share one bottleneck whose
// buffer follows a sizing rule — the classic B = C·RTT, the many-flows
// B = C·RTT/√n, and fractions of either — crossed with the scheme
// registry's buffer managers. Each cell reports utilization, loss, p99
// queueing delay, and Jain fairness of per-flow goodput, reproducing
// the regime where the 1998 rule of thumb gives way to the √n rule and
// showing where per-flow threshold protection stops binding.
//
// Usage:
//
//	qsize                                    # default grid, table on stdout
//	qsize -flows 10,100,1000 -schemes fifo+none,fifo+threshold
//	qsize -flows 100 -rules bdp,bdp/sqrtn -open
//	qsize -out BENCH_sizing.json             # also write the JSON report
//	qsize -check                             # exit 1 if the √n floor fails
//	qsize -md BENCH_sizing.json              # print the EXPERIMENTS.md rows
//
// Reports are bit-identical for a given seed at any -workers count.
// Exit status: 0 (with -check: every √n cell with n ≥ 64 utilized
// ≥ 90%), 1 on a violation, 130 interrupted.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"bufqos/internal/sizing"
	"bufqos/internal/units"
)

func main() {
	var (
		flows    = flag.String("flows", "", "comma-separated flow counts n (default: the built-in grid)")
		rules    = flag.String("rules", "", "comma-separated sizing rules, e.g. bdp,bdp/2,bdp/sqrtn,bdp/2sqrtn")
		schemes  = flag.String("schemes", "", "comma-separated scheme specs, e.g. fifo+none,fifo+threshold")
		open     = flag.Bool("open", false, "use open-loop (σ,ρ) on-off sources instead of closed-loop TCP")
		rate     = flag.Float64("rate", 100, "bottleneck capacity C in Mb/s")
		rtt      = flag.Float64("rtt", 40, "round-trip propagation time in ms")
		segment  = flag.Int("segment", 1500, "data segment size in bytes")
		duration = flag.Float64("duration", 10, "simulated seconds per cell")
		warmup   = flag.Float64("warmup", 0, "measurement warmup in seconds (0 = duration/4)")
		seed     = flag.Int64("seed", 1, "sweep seed (cell seeds derive from it)")
		workers  = flag.Int("workers", 0, "concurrent cells (0 = GOMAXPROCS; reports are identical)")
		outPath  = flag.String("out", "", "also write the report as JSON to this file")
		check    = flag.Bool("check", false, "exit 1 unless every closed-loop tail-drop bdp/sqrtn cell with n ≥ 64 above the buffer floor is ≥ 90% utilized")
		md       = flag.String("md", "", "print the EXPERIMENTS.md table rows for this report JSON and exit")
	)
	flag.Parse()

	if *md != "" {
		if err := writeMarkdown(*md); err != nil {
			fatalf("%v", err)
		}
		return
	}

	cfg := sizing.Config{
		LinkRate:    units.MbitsPerSecond(*rate),
		RTT:         *rtt / 1e3,
		SegmentSize: units.Bytes(*segment),
		Duration:    *duration,
		Warmup:      *warmup,
		Seed:        *seed,
		Workers:     *workers,
	}
	custom := *flows != "" || *rules != "" || *schemes != ""
	if custom {
		ns, err := parseFlows(*flows)
		if err != nil {
			fatalf("-flows: %v", err)
		}
		rs, err := parseRules(*rules)
		if err != nil {
			fatalf("-rules: %v", err)
		}
		ss := sizing.DefaultSchemes
		if *schemes != "" {
			ss = strings.Split(*schemes, ",")
		}
		cfg.Cells = sizing.Grid(ns, rs, ss, *open)
	} else if *open {
		fatalf("-open requires a custom grid (set -flows, -rules, or -schemes); the default grid already includes open-loop cells")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	rep, err := sizing.Sweep(ctx, cfg)
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "qsize: interrupted")
		os.Exit(130)
	}
	if err != nil {
		fatalf("%v", err)
	}
	writeTable(rep)
	if *outPath != "" {
		if err := writeJSON(*outPath, rep); err != nil {
			fatalf("%v", err)
		}
	}
	if bad := sqrtViolations(rep); len(bad) > 0 {
		fmt.Printf("%d cell(s) under 90%% utilization at B = C·RTT/√n with n ≥ 64\n", len(bad))
		if *check {
			os.Exit(1)
		}
	} else if *check {
		fmt.Println("√n-regime utilization floor held")
	}
}

// sqrtViolations returns the closed-loop tail-drop bdp/sqrtn cells with
// n ≥ 64 that fall below 90% utilization — the regression the
// sizing-sqrt-n oracle pins. The claim is the literature's: it is about
// plain drop-tail FIFO (schemes that partition the buffer per flow
// throttle harder at tiny B by design) and it presumes the prescribed
// buffer still holds a handful of packets — once C·RTT/√n shrinks
// under ~8 segments the rule has left its validity region (the sweep
// documents that boundary), so such cells are exempt.
func sqrtViolations(rep *sizing.Report) []sizing.Cell {
	var bad []sizing.Cell
	for _, c := range rep.Cells {
		if c.Open || c.Rule != sizing.RuleSqrt.Name || c.Flows < 64 || c.Scheme != "fifo+none" {
			continue
		}
		if c.BufferPkts < 8 {
			continue
		}
		if c.Utilization < 0.90 {
			bad = append(bad, c)
		}
	}
	return bad
}

func writeTable(rep *sizing.Report) {
	fmt.Printf("buffer-sizing sweep: C=%gMb/s RTT=%gms seg=%dB %gs/cell (warmup %gs) seed %d\n",
		rep.LinkRateMbps, rep.RTT*1e3, int64(rep.SegmentSize), rep.Duration, rep.Warmup, rep.Seed)
	fmt.Printf("%-8s %-10s %-16s %-5s %9s %6s %6s %7s %9s %7s %9s\n",
		"n", "rule", "scheme", "loop", "B", "Bpkts", "util", "loss", "p99delay", "fair", "retx")
	for _, c := range rep.Cells {
		loop := "tcp"
		if c.Open {
			loop = "open"
		}
		fmt.Printf("%-8d %-10s %-16s %-5s %9s %6.0f %6.3f %7.4f %8.2fms %7.3f %9d\n",
			c.Flows, c.Rule, c.Scheme, loop, c.Buffer.String(), c.BufferPkts,
			c.Utilization, c.Loss, c.P99DelayMs, c.Fairness, c.Retransmits)
	}
}

// writeMarkdown prints the EXPERIMENTS.md table rows the docs drift
// test pins, rendered from a committed report JSON.
func writeMarkdown(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep sizing.Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	fmt.Println("√n-regime table (closed-loop fifo+none cells):")
	for _, row := range sizing.SqrtRegimeRows(&rep) {
		fmt.Println(row)
	}
	fmt.Println()
	fmt.Println("scheme-ladder table (n=10 at B = C·RTT):")
	for _, row := range sizing.SchemeLadderRows(&rep) {
		fmt.Println(row)
	}
	return nil
}

func writeJSON(path string, rep *sizing.Report) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func parseFlows(s string) ([]int, error) {
	if s == "" {
		return []int{10, 100, 1000, 10000}, nil
	}
	var out []int
	for _, tok := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("%q is not a positive integer", tok)
		}
		out = append(out, n)
	}
	return out, nil
}

func parseRules(s string) ([]sizing.Rule, error) {
	if s == "" {
		return sizing.DefaultRules, nil
	}
	var out []sizing.Rule
	for _, tok := range strings.Split(s, ",") {
		r, err := sizing.ParseRule(strings.TrimSpace(tok))
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "qsize: "+format+"\n", args...)
	os.Exit(1)
}
