package bufqos_test

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"bufqos/internal/topology"
	"bufqos/internal/units"
)

// gfrFloor computes the tcp-goodput-floor bar for one flow: half the
// reserved rate over the active window, minus the storage-and-flight
// allowance topology.Verify grants (bucket plus per-hop buffer, wire,
// and one packet).
func gfrFloor(t *topology.Topology, f *topology.Flow, active float64) units.Bytes {
	allow := f.Spec.BucketSize
	for _, li := range f.Route {
		l := &t.Links[li]
		allow += l.Buffer + units.BytesAtRate(l.Rate, l.PropDelay) + f.PacketSize
	}
	return units.Bytes(topology.TCPGoodputFraction*
		float64(units.BytesAtRate(f.Spec.TokenRate, active))) - allow
}

// TestGFR3ScenarioContract pins the shipped gfr3 scenario's GFR story:
// every TCP flow is admitted, the goodput floor holds on the guaranteed
// paths (fifo+threshold, fifo+sharing, wfq+sharing — asserted by
// topology.Verify), and the taildrop path's big reservation measurably
// MISSES the same floor — the control showing per-flow buffer
// management, not luck, is what protects the big flow's share.
func TestGFR3ScenarioContract(t *testing.T) {
	topo, err := topology.Load("topologies/gfr3.json")
	if err != nil {
		t.Fatal(err)
	}
	res, err := topology.Run(context.Background(), topo, topology.Options{Duration: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}

	floors := 0
	for _, a := range topology.Verify(topo, &res) {
		if a.Failed() {
			t.Errorf("%s: %s: %v", a.Name, a.Detail, a.Err)
		}
		if a.Name == "tcp-goodput-floor" {
			floors++
		}
	}
	// 6 flows on the threshold path + 5 each on sharing and wfq.
	if floors != 16 {
		t.Errorf("want 16 goodput-floor assertions (guaranteed paths only), got %d", floors)
	}

	tailBig := -1
	for fi := range topo.Flows {
		f := &topo.Flows[fi]
		fr := &res.Flows[fi]
		if !fr.Admitted {
			t.Errorf("flow %s rejected; gfr3 must sit inside every admission region", f.Name)
		}
		if f.Name == "tail-big" {
			tailBig = fi
		}
	}
	if tailBig < 0 {
		t.Fatal("gfr3 lost its tail-big flow")
	}

	// The expected-fail control: on plain taildrop the synchronized
	// windows equalize and the big reservation cannot reach its floor.
	f, fr := &topo.Flows[tailBig], &res.Flows[tailBig]
	want := gfrFloor(topo, f, fr.LeaveAt-fr.JoinAt)
	if fr.Goodput.Bytes >= want {
		t.Errorf("taildrop big flow reached the floor (goodput %v >= %v); the control no longer discriminates",
			fr.Goodput.Bytes, want)
	}
	if fr.Goodput.Packets == 0 || fr.Retransmits == 0 {
		t.Errorf("taildrop big flow should limp, not stall: goodput %d pkts, %d retransmits",
			fr.Goodput.Packets, fr.Retransmits)
	}
}

// TestGFR3ShardBitIdentity extends the determinism contract to the
// shipped closed-loop scenario: shards 2, 4, and 8 must reproduce the
// single-shard Result exactly, ACKs and drop notifications included.
func TestGFR3ShardBitIdentity(t *testing.T) {
	topo, err := topology.Load("topologies/gfr3.json")
	if err != nil {
		t.Fatal(err)
	}
	opts := topology.Options{Duration: 3, Seed: 1}
	base, err := topology.Run(context.Background(), topo, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{2, 4, 8} {
		o := opts
		o.Shards = shards
		res, err := topology.Run(context.Background(), topo, o)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if !reflect.DeepEqual(base, res) {
			t.Errorf("shards=%d: result differs from single-shard run", shards)
		}
	}
}

// TestGFR3SuffixedEventTime pins the wire format the scenario relies
// on: the late join is written with a duration-suffixed time.
func TestGFR3SuffixedEventTime(t *testing.T) {
	raw, err := topology.Load("topologies/gfr3.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(raw.Events) != 1 || raw.Events[0].At != 2.5 {
		t.Fatalf("gfr3 timeline changed: %+v", raw.Events)
	}
	if raw.Events[0].Kind != topology.EventJoin || !strings.HasPrefix(raw.Events[0].Flow, "thr-") {
		t.Errorf("late join must land on the threshold path, got %+v", raw.Events[0])
	}
}
