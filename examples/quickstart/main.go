// Quickstart: protect one flow's rate guarantee with nothing but a
// FIFO queue and a per-flow buffer threshold (Proposition 1 of the
// paper, live).
//
// A conformant 8 Mb/s flow shares a 48 Mb/s link and a 1 MB buffer with
// a greedy flow that offers the full link rate. With no buffer
// management the greedy flow starves the conformant one; with the
// B·ρ/R threshold rule the conformant flow receives its reservation to
// the byte.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"bufqos/internal/buffer"
	"bufqos/internal/core"
	"bufqos/internal/sched"
	"bufqos/internal/sim"
	"bufqos/internal/source"
	"bufqos/internal/stats"
	"bufqos/internal/units"
)

func main() {
	linkRate := units.MbitsPerSecond(48)
	bufSize := units.MegaBytes(1)
	reserved := units.MbitsPerSecond(8)

	fmt.Println("Scenario: conformant 8 Mb/s flow vs greedy flow, 48 Mb/s FIFO link, 1 MB buffer")
	fmt.Println()

	run := func(name string, mgr buffer.Manager) {
		s := sim.New()
		col := stats.NewCollector(2, 1.0)
		link := sched.NewLink(s, linkRate, sched.NewFIFO(), mgr, col)

		// Flow 0: conformant CBR at its reserved rate.
		victim := source.NewCBR(s, 0, 500, reserved, link)
		victim.Start()
		// Flow 1: greedy, offers the entire link rate.
		greedy := source.NewSaturating(s, 1, 500, linkRate, link)
		greedy.Start()

		const dur = 10.0
		s.RunUntil(dur)

		fmt.Printf("%-22s conformant: %6.2f Mb/s (loss %5.2f%%)   greedy: %6.2f Mb/s\n",
			name,
			col.FlowThroughput(0, dur).Mbits(), 100*col.LossRatio(0),
			col.FlowThroughput(1, dur).Mbits())
	}

	// Benchmark 1: shared buffer, no management — the greedy flow
	// captures the buffer and with it the link.
	run("FIFO, no management:", buffer.NewTailDrop(bufSize, 2))

	// The paper's scheme: threshold B·ρ/R for the reserved flow, the
	// rest for everyone else.
	th := core.PeakRateThreshold(reserved, linkRate, bufSize)
	run("FIFO + thresholds:", buffer.NewFixedThreshold(bufSize, []units.Bytes{
		th + 500, // one packet of slack for packetization
		bufSize - th - 500,
	}))

	fmt.Println()
	fmt.Printf("threshold used: B·ρ/R = %v of the %v buffer\n", th, bufSize)
	fmt.Println("The conformant flow's guarantee needs no per-flow scheduling — only O(1) admission.")
}
