// SLA protection: the paper's motivating scenario — a provider sells
// "Service Level Agreements" (rate guarantees) on a backbone link and
// must keep misbehaving customers from starving paying ones, at
// per-packet costs that scale to thousands of flows.
//
// This example runs the full Table 1 workload (six conformant customers
// with SLAs, three aggressive ones) through the four §3.2 schemes and
// prints each customer's SLA attainment.
//
//	go run ./examples/slaprotection
package main

import (
	"context"
	"fmt"
	"os"
	"text/tabwriter"

	"bufqos/internal/experiment"
	"bufqos/internal/units"
)

func main() {
	flows := experiment.Table1Flows()
	schemes := []experiment.Scheme{
		experiment.FIFONoBM,
		experiment.WFQNoBM,
		experiment.FIFOThreshold,
		experiment.WFQThreshold,
	}

	fmt.Println("SLA attainment on a 48 Mb/s link, 1 MB buffer, Table 1 workload")
	fmt.Println("(delivered rate / reserved rate for the six conformant customers; 10 s run)")
	fmt.Println()

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "customer\treserved")
	for _, s := range schemes {
		fmt.Fprintf(tw, "\t%s", s)
	}
	fmt.Fprintln(tw)

	results := make([]experiment.Result, len(schemes))
	for i, s := range schemes {
		res, err := experiment.Run(context.Background(), experiment.NewOptions(
			experiment.WithFlows(flows),
			experiment.WithScheme(s),
			experiment.WithBuffer(units.MegaBytes(1)),
			experiment.WithDuration(10),
			experiment.WithWarmup(1),
			experiment.WithSeed(42),
		))
		if err != nil {
			fmt.Fprintf(os.Stderr, "slaprotection: %v\n", err)
			os.Exit(1)
		}
		results[i] = res
	}

	for id := 0; id <= 5; id++ {
		reserved := flows[id].Spec.TokenRate
		fmt.Fprintf(tw, "flow %d\t%v", id, reserved)
		for _, res := range results {
			attain := res.FlowThroughput[id].BitsPerSecond() / reserved.BitsPerSecond()
			fmt.Fprintf(tw, "\t%5.1f%%", 100*attain)
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()

	fmt.Println()
	tw = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "scheme\tlink utilization\tconformant loss")
	for i, s := range schemes {
		fmt.Fprintf(tw, "%s\t%.1f%%\t%.2f%%\n", s, 100*results[i].Utilization, 100*results[i].ConformantLoss)
	}
	tw.Flush()

	fmt.Println()
	fmt.Println("Without buffer management, both schedulers let the aggressive flows")
	fmt.Println("(6-8, offering far above their reservations) push conformant traffic out")
	fmt.Println("of the buffer. Thresholds restore the SLAs — and for FIFO they do it")
	fmt.Println("with O(1) per-packet work, no sorted queues.")
}
