// Backbone: the paper's scheme deployed at every hop of a multi-node
// path. A premium customer's conformant flow crosses three routers;
// each router also carries its own local aggressive traffic. With
// threshold buffer management at every output port (O(1) per packet,
// per the paper's scalability argument), the flow's end-to-end rate
// guarantee survives all three contention points; with plain FIFO it
// collapses at the first.
//
//	go run ./examples/backbone
package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	"bufqos/internal/buffer"
	"bufqos/internal/core"
	"bufqos/internal/network"
	"bufqos/internal/sched"
	"bufqos/internal/sim"
	"bufqos/internal/source"
	"bufqos/internal/stats"
	"bufqos/internal/units"
)

func main() {
	const hops = 3
	linkRate := units.MbitsPerSecond(48)
	rho := units.MbitsPerSecond(8) // the customer's SLA
	bufSize := units.KiloBytes(500)
	prop := 0.002 // 2 ms per hop

	fmt.Printf("3-hop backbone, %v links, %v buffers, 2 ms propagation per hop\n", linkRate, bufSize)
	fmt.Printf("flow 0: conformant, SLA %v end-to-end; flows 1..%d: one saturating aggressor per hop\n\n", rho, hops)

	run := func(managed bool) (units.Rate, float64, int64) {
		s := sim.New()
		routers := make([]*network.Router, hops)
		for h := 0; h < hops; h++ {
			var mgr buffer.Manager
			if managed {
				th := core.PeakRateThreshold(rho, linkRate, bufSize)
				rest := bufSize - th - 500
				// Flow IDs: 0 = customer, 1+h = hop-h aggressor.
				thresholds := make([]units.Bytes, 1+hops)
				thresholds[0] = th + 500
				thresholds[1+h] = rest
				mgr = buffer.NewFixedThreshold(bufSize, thresholds)
			} else {
				mgr = buffer.NewTailDrop(bufSize, 1+hops)
			}
			routers[h] = network.NewRouter(s, fmt.Sprintf("hop%d", h), linkRate,
				sched.NewFIFO(), mgr, stats.NewCollector(1+hops, 1), prop)
		}
		path := network.NewPath(s, routers, 1)

		victim := source.NewCBR(s, 0, 500, rho, path.Head())
		victim.Start()
		for h := 0; h < hops; h++ {
			agg := source.NewSaturating(s, 1+h, 500, linkRate, routers[h])
			agg.Start()
		}
		const dur = 10.0
		s.RunUntil(dur)

		var drops int64
		for _, r := range routers {
			drops += r.Collector().Flow(0).Dropped.Total().Packets
		}
		return path.Delivery.Throughput(0), path.Delivery.Delay(0).Max(), drops
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "per-hop policy\tend-to-end rate\tSLA attainment\tworst delay\tdrops")
	for _, c := range []struct {
		name    string
		managed bool
	}{
		{"tail-drop FIFO", false},
		{"FIFO + thresholds", true},
	} {
		rate, worst, drops := run(c.managed)
		fmt.Fprintf(tw, "%s\t%v\t%.1f%%\t%.1f ms\t%d\n",
			c.name, rate, 100*rate.BitsPerSecond()/rho.BitsPerSecond(), worst*1e3, drops)
	}
	tw.Flush()

	fmt.Println("\nEvery hop makes its admission decision from two counters (flow occupancy")
	fmt.Println("and total) — no per-flow scheduling state anywhere on the path.")
}
