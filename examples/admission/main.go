// Admission control: the §2.3 schedulability regions in action.
//
// A stream of flow requests (video-conference-sized reservations)
// arrives at a 48 Mb/s link. Two controllers with the same buffer
// decide admission: one for a WFQ scheduler (eqs. 5-6) and one for the
// FIFO + buffer-management scheme (eqs. 7-8). The FIFO region is
// buffer-limited earlier — equation (10)'s 1/(1-u) inflation — which is
// the price of O(1) scheduling; the example shows exactly where each
// controller stops admitting and why.
//
//	go run ./examples/admission
package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	"bufqos/internal/core"
	"bufqos/internal/packet"
	"bufqos/internal/units"
)

func main() {
	linkRate := units.MbitsPerSecond(48)
	bufSize := units.MegaBytes(2)

	wfq := core.NewSerialAdmitter(core.DisciplineWFQ, linkRate, bufSize)
	fifo := core.NewSerialAdmitter(core.DisciplineFIFO, linkRate, bufSize)

	request := packet.FlowSpec{
		TokenRate:  units.MbitsPerSecond(2),
		BucketSize: units.KiloBytes(60),
		PeakRate:   units.MbitsPerSecond(16),
	}
	fmt.Printf("link %v, buffer %v; each request reserves (σ=%v, ρ=%v)\n\n",
		linkRate, bufSize, request.BucketSize, request.TokenRate)

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "request\tu after\tWFQ (eqs. 5-6)\tFIFO+BM (eqs. 7-8)")
	for i := 1; i <= 24; i++ {
		wres := wfq.Admit(request)
		fres := fifo.Admit(request)
		u := float64(i) * request.TokenRate.BitsPerSecond() / linkRate.BitsPerSecond()
		fmt.Fprintf(tw, "%d\t%.3f\t%v\t%v\n", i, u, wres, fres)
		if wres != core.Accepted && fres != core.Accepted {
			break
		}
	}
	tw.Flush()

	fmt.Printf("\nadmitted: WFQ %d flows (u = %.2f), FIFO+BM %d flows (u = %.2f)\n",
		wfq.NumFlows(), wfq.Utilization(), fifo.NumFlows(), fifo.Utilization())

	// Show the knob the paper highlights: more buffer buys FIFO+BM
	// admission capacity (bandwidth is eventually the binding limit).
	fmt.Println("\nFIFO+BM admitted flows as the buffer grows (same request mix):")
	tw = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "buffer\tadmitted\tfinal u\tlimit")
	for _, mb := range []float64{0.5, 1, 2, 4, 8, 16} {
		c := core.NewSerialAdmitter(core.DisciplineFIFO, linkRate, units.MegaBytes(mb))
		last := core.Accepted
		for {
			if r := c.Admit(request); r != core.Accepted {
				last = r
				break
			}
		}
		fmt.Fprintf(tw, "%v\t%d\t%.2f\t%v\n", units.MegaBytes(mb), c.NumFlows(), c.Utilization(), last)
	}
	tw.Flush()
	fmt.Println("\nPast the bandwidth bound (u -> 1) extra buffer buys nothing — the")
	fmt.Println("1/(1-u) blow-up of equation (10) is the scheme's fundamental trade.")
}
