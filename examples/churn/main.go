// Churn: flows come and go. Video-call-sized reservations arrive as a
// Poisson process at increasing intensities; the §2.3 FIFO+BM admission
// region decides who gets in, per-flow thresholds are recomputed on
// every population change, and we watch the Erlang-style trade-off:
// blocking rises with load while every admitted flow keeps its
// guarantee (zero conformant loss throughout).
//
//	go run ./examples/churn
package main

import (
	"context"
	"fmt"
	"os"
	"text/tabwriter"

	"bufqos/internal/experiment"
	"bufqos/internal/packet"
	"bufqos/internal/units"
)

func main() {
	template := experiment.FlowConfig{
		Spec: packet.FlowSpec{
			PeakRate:   units.MbitsPerSecond(16),
			TokenRate:  units.MbitsPerSecond(2),
			BucketSize: units.KiloBytes(40),
		},
		AvgRate:     units.MbitsPerSecond(2),
		MeanBurst:   units.KiloBytes(40),
		Conformance: experiment.Conformant,
	}

	fmt.Println("48 Mb/s link, 2 MB buffer; each flow reserves 2 Mb/s with a 40 KB bucket")
	fmt.Println("mean hold time 10 s; arrival rate swept (offered Erlangs = rate × hold)")
	fmt.Println()

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "arrivals/s\toffered Erlangs\tmean active\tblocking\tutilization\tconformant loss")
	rates := []float64{0.5, 1, 2, 4, 8}
	// The five intensities run concurrently (workers=0 → GOMAXPROCS);
	// SweepChurn guarantees the table is identical to a sequential sweep.
	sweep, err := experiment.SweepChurn(context.Background(), experiment.ChurnConfig{
		Templates: []experiment.FlowConfig{template},
		MeanHold:  10,
		MaxFlows:  64,
		Buffer:    units.MegaBytes(2),
		Duration:  120,
		Warmup:    12,
		Seed:      1,
	}, rates, 1, 0)
	if err != nil {
		fmt.Fprintf(os.Stderr, "churn: %v\n", err)
		os.Exit(1)
	}
	for i, lambda := range rates {
		res := sweep[i][0]
		fmt.Fprintf(tw, "%.1f\t%.0f\t%.1f\t%.1f%%\t%.1f%%\t%.4f%%\n",
			lambda, lambda*10, res.MeanActive,
			100*res.BlockingProbability, 100*res.Utilization, 100*res.ConformantLoss)
	}
	tw.Flush()

	fmt.Println("\nAdmission (eqs. 7-8) throttles intake as the region fills; thresholds are")
	fmt.Println("recomputed on every arrival and departure, and no admitted flow ever loses")
	fmt.Println("a conformant packet — the guarantee survives churn.")
}
