// Hybrid router: the §4 architecture sized with the paper's formulas.
//
// A carrier aggregates three service classes onto one 48 Mb/s trunk —
// the example at the end of §4.1: "low bandwidth and burstiness IP
// telephony flows could be assigned to one queue, while higher
// bandwidth and burstiness video on demand streams would be mapped onto
// another queue". We:
//
//  1. search for the buffer-optimal grouping into 3 queues,
//
//  2. allocate queue rates by Proposition 3 (eq. 14/16),
//
//  3. size per-queue buffers by eq. 18 and report the eq. 17 savings,
//
//  4. run the hybrid router and compare it against per-flow WFQ.
//
//     go run ./examples/hybridrouter
package main

import (
	"context"
	"fmt"
	"os"
	"text/tabwriter"

	"bufqos/internal/core"
	"bufqos/internal/experiment"
	"bufqos/internal/packet"
	"bufqos/internal/units"
)

func main() {
	linkRate := units.MbitsPerSecond(48)

	// Three service classes: telephony (smooth, low-rate), video on
	// demand (bursty, mid-rate), bulk data (very bursty, low floor).
	mkFlow := func(peakMb, avgMb, bucketKB, tokenMb, burstKB float64, conf experiment.Conformance) experiment.FlowConfig {
		return experiment.FlowConfig{
			Spec: packet.FlowSpec{
				PeakRate:   units.MbitsPerSecond(peakMb),
				TokenRate:  units.MbitsPerSecond(tokenMb),
				BucketSize: units.KiloBytes(bucketKB),
			},
			AvgRate:     units.MbitsPerSecond(avgMb),
			MeanBurst:   units.KiloBytes(burstKB),
			Conformance: conf,
		}
	}
	var flows []experiment.FlowConfig
	for i := 0; i < 4; i++ { // telephony
		flows = append(flows, mkFlow(2, 0.5, 5, 0.5, 5, experiment.Conformant))
	}
	for i := 0; i < 3; i++ { // video on demand
		flows = append(flows, mkFlow(24, 6, 120, 6, 120, experiment.Conformant))
	}
	for i := 0; i < 2; i++ { // bulk data, aggressive
		flows = append(flows, mkFlow(40, 6, 60, 1, 300, experiment.Aggressive))
	}
	specs := experiment.Specs(flows)

	queueOf, err := core.OptimizeGroupingExhaustive(specs, 3)
	check(err)
	fmt.Printf("optimal grouping of %d flows into 3 queues: %v\n\n", len(flows), queueOf)

	k := 0
	for _, q := range queueOf {
		if q+1 > k {
			k = q + 1
		}
	}
	groups, err := core.GroupFlows(specs, queueOf, k)
	check(err)
	rates, err := core.AllocateHybrid(linkRate, groups)
	check(err)
	minBuf, err := core.HybridBufferPerQueue(linkRate, groups)
	check(err)

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "queue\tσ̂\tρ̂\trate Rᵢ (eq.16)\tmin buffer Bᵢ (eq.18)")
	for q, g := range groups {
		fmt.Fprintf(tw, "%d\t%v\t%v\t%v\t%v\n", q, g.Sigma, g.Rho, rates[q], minBuf[q])
	}
	tw.Flush()

	hybridTotal, err := core.HybridBufferTotal(linkRate, groups)
	check(err)
	fifoTotal, err := core.RequiredBufferFIFO(specs, linkRate)
	check(err)
	savings, err := core.BufferSavings(linkRate, groups)
	check(err)
	fmt.Printf("\nlossless buffer: single FIFO %v, hybrid %v (saves %v, eq. 17)\n",
		fifoTotal, hybridTotal, savings)
	fmt.Printf("WFQ would need %v but per-flow sorted queues for %d flows\n\n",
		core.RequiredBufferWFQ(specs), len(flows))

	// Run both systems at the hybrid's minimum buffer.
	for _, scheme := range []experiment.Scheme{experiment.HybridSharing, experiment.WFQSharing} {
		res, err := experiment.Run(context.Background(), experiment.NewOptions(
			experiment.WithFlows(flows),
			experiment.WithScheme(scheme),
			experiment.WithBuffer(hybridTotal),
			experiment.WithHeadroom(hybridTotal/4),
			experiment.WithQueues(queueOf),
			experiment.WithDuration(10),
			experiment.WithWarmup(1),
			experiment.WithSeed(7),
		))
		check(err)
		fmt.Printf("%-16s utilization %.1f%%  conformant loss %.3f%%\n",
			scheme.String()+":", 100*res.Utilization, 100*res.ConformantLoss)
	}
	fmt.Println("\nThe 3-queue hybrid needs a sorted list of 3 entries — not", len(flows), "—")
	fmt.Println("yet tracks per-flow WFQ on both utilization and protection.")
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "hybridrouter: %v\n", err)
		os.Exit(1)
	}
}
