module bufqos

go 1.22
