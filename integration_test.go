package bufqos_test

import (
	"context"
	"math"
	"testing"

	"bufqos/internal/buffer"
	"bufqos/internal/core"
	"bufqos/internal/experiment"
	"bufqos/internal/fluid"
	"bufqos/internal/packet"
	"bufqos/internal/sched"
	"bufqos/internal/sim"
	"bufqos/internal/source"
	"bufqos/internal/stats"
	"bufqos/internal/units"
)

// TestProposition1Packetized verifies the paper's central result on the
// packet-level simulator with the exact adversary of Example 1: a
// FeedbackGreedy flow that keeps its occupancy pinned at its threshold.
// The conformant CBR flow, given threshold B·ρ/R plus one packet of
// packetization slack, must lose nothing and receive its rate.
func TestProposition1Packetized(t *testing.T) {
	linkRate := units.MbitsPerSecond(48)
	rho := units.MbitsPerSecond(8)
	bufSize := units.MegaBytes(1)
	const pkt = units.Bytes(500)

	s := sim.New()
	col := stats.NewCollector(2, 0)
	th := core.PeakRateThreshold(rho, linkRate, bufSize)
	mgr := buffer.NewFixedThreshold(bufSize, []units.Bytes{th + pkt, bufSize - th - pkt})
	link := sched.NewLink(s, linkRate, sched.NewFIFO(), mgr, col)

	greedy := source.NewFeedbackGreedy(s, 1, pkt, mgr, link)
	link.OnDepart = greedy.DepartureHook()
	greedy.Kick()

	victim := source.NewCBR(s, 0, pkt, rho, link)
	victim.Start()

	const dur = 20.0
	s.RunUntil(dur)

	if drops := col.Flow(0).Dropped.Total().Packets; drops != 0 {
		t.Errorf("Proposition 1 violated on the packet level: %d conformant drops", drops)
	}
	// Long-run rate approaches ρ (the start-up transient starves it, as
	// Example 1 derives, so allow a few percent).
	got := col.FlowThroughput(0, dur)
	if got.BitsPerSecond() < rho.BitsPerSecond()*0.95 {
		t.Errorf("conformant flow got %v, want ≈ %v", got, rho)
	}
	// The greedy flow keeps its occupancy pinned at its threshold.
	if occ := mgr.Occupancy(1); occ < (bufSize-th-pkt)-2*pkt {
		t.Errorf("greedy occupancy %v not pinned near %v", occ, bufSize-th-pkt)
	}
	// And it takes the remaining capacity: R − ρ.
	greedyRate := col.FlowThroughput(1, dur)
	want := linkRate - rho
	if math.Abs(greedyRate.BitsPerSecond()-want.BitsPerSecond())/want.BitsPerSecond() > 0.05 {
		t.Errorf("greedy rate %v, want ≈ R−ρ = %v", greedyRate, want)
	}
}

// TestProposition1NecessityPacketized shrinks the victim's threshold by
// 20% and demands losses — the necessity half of Example 1, on packets.
func TestProposition1NecessityPacketized(t *testing.T) {
	linkRate := units.MbitsPerSecond(48)
	rho := units.MbitsPerSecond(8)
	bufSize := units.MegaBytes(1)
	const pkt = units.Bytes(500)

	s := sim.New()
	col := stats.NewCollector(2, 0)
	th := units.Bytes(float64(core.PeakRateThreshold(rho, linkRate, bufSize)) * 0.8)
	mgr := buffer.NewFixedThreshold(bufSize, []units.Bytes{th, bufSize - th})
	link := sched.NewLink(s, linkRate, sched.NewFIFO(), mgr, col)

	greedy := source.NewFeedbackGreedy(s, 1, pkt, mgr, link)
	link.OnDepart = greedy.DepartureHook()
	greedy.Kick()
	victim := source.NewCBR(s, 0, pkt, rho, link)
	victim.Start()

	s.RunUntil(20)
	if col.Flow(0).Dropped.Total().Packets == 0 {
		t.Error("under-allocated threshold lost nothing — necessity example not reproduced")
	}
}

// TestExample1DynamicsPacketized cross-validates the fluid recursion
// against the packet simulator: the victim's throughput measured over
// the whole run must exceed the early-interval rates and approach ρ₁,
// and the greedy flow's rate must approach R−ρ₁.
func TestExample1DynamicsPacketized(t *testing.T) {
	linkRate := units.MbitsPerSecond(48)
	rho := units.MbitsPerSecond(8)
	bufSize := units.MegaBytes(1)

	ex, err := fluid.NewExample1(rho, linkRate, bufSize)
	if err != nil {
		t.Fatal(err)
	}
	_, r1Inf, r2Inf := ex.Limits()

	s := sim.New()
	col := stats.NewCollector(2, 10) // measure the settled tail only
	th := core.PeakRateThreshold(rho, linkRate, bufSize)
	mgr := buffer.NewFixedThreshold(bufSize, []units.Bytes{th + 500, bufSize - th - 500})
	link := sched.NewLink(s, linkRate, sched.NewFIFO(), mgr, col)
	greedy := source.NewFeedbackGreedy(s, 1, 500, mgr, link)
	link.OnDepart = greedy.DepartureHook()
	greedy.Kick()
	victim := source.NewCBR(s, 0, 500, rho, link)
	victim.Start()

	const dur = 40.0
	s.RunUntil(dur)

	v := col.FlowThroughput(0, dur)
	g := col.FlowThroughput(1, dur)
	if math.Abs(v.BitsPerSecond()-r1Inf.BitsPerSecond())/r1Inf.BitsPerSecond() > 0.03 {
		t.Errorf("victim settled at %v, fluid limit is %v", v, r1Inf)
	}
	if math.Abs(g.BitsPerSecond()-r2Inf.BitsPerSecond())/r2Inf.BitsPerSecond() > 0.03 {
		t.Errorf("greedy settled at %v, fluid limit is %v", g, r2Inf)
	}
}

// TestRemark1ExcessTrafficNotPenalized checks the Remark 1 claim: a
// non-conformant flow delivers at least as much as its conformant
// (green) sub-stream would alone — excess traffic may be lost, but
// conformance is never punished.
func TestRemark1ExcessTrafficNotPenalized(t *testing.T) {
	linkRate := units.MbitsPerSecond(48)
	bufSize := units.KiloBytes(300)
	spec := packet.FlowSpec{
		PeakRate:   units.MbitsPerSecond(40),
		TokenRate:  units.MbitsPerSecond(2),
		BucketSize: units.KiloBytes(50),
	}

	s := sim.New()
	col := stats.NewCollector(2, 1)
	th, err := core.Thresholds([]packet.FlowSpec{spec, {TokenRate: units.MbitsPerSecond(30), BucketSize: units.KiloBytes(100)}}, linkRate, bufSize)
	if err != nil {
		t.Fatal(err)
	}
	mgr := buffer.NewFixedThreshold(bufSize, th)
	link := sched.NewLink(s, linkRate, sched.NewFIFO(), mgr, col)

	// Flow 0 sends 4× its token rate through a meter (so its packets
	// carry green/red colors); flow 1 is a heavy competitor.
	meter := source.NewMeter(s, spec, link)
	src := source.NewOnOff(s, sim.NewRand(3), source.OnOffConfig{
		Flow: 0, PacketSize: 500,
		PeakRate:  units.MbitsPerSecond(40),
		AvgRate:   units.MbitsPerSecond(8),
		MeanBurst: units.KiloBytes(250),
	}, meter)
	src.Start()
	comp := source.NewSaturating(s, 1, 500, units.MbitsPerSecond(40), link)
	comp.Start()

	const dur = 20.0
	s.RunUntil(dur)

	delivered := col.Flow(0).Departed.Total().Bytes
	greenOffered := col.Flow(0).Offered.Conformant.Bytes
	// Remark 1: at least as many bits get through as there are
	// conformant bits (tolerance: what is still queued, ≤ threshold).
	if delivered+th[0] < greenOffered {
		t.Errorf("delivered %v < conformant volume %v: excess traffic was penalized", delivered, greenOffered)
	}
}

// TestWFQMatchesGPSReference replays a randomized arrival script on the
// packetized WFQ and on a brute-force fluid GPS reference, and checks
// the PGPS bound: every packet finishes no later than its GPS finish
// time plus one maximum packet time.
func TestWFQMatchesGPSReference(t *testing.T) {
	const nflows = 3
	rate := units.MbitsPerSecond(12)
	weights := []units.Rate{units.MbitsPerSecond(2), units.MbitsPerSecond(4), units.MbitsPerSecond(6)}

	type arrival struct {
		at   float64
		flow int
		size units.Bytes
	}
	rng := sim.NewRand(77)
	var script []arrival
	at := 0.0
	for i := 0; i < 300; i++ {
		at += rng.Float64() * 0.002
		script = append(script, arrival{
			at:   at,
			flow: rng.Intn(nflows),
			size: units.Bytes(100 + rng.Intn(1400)),
		})
	}

	// Packetized WFQ run, recording departure times per (flow, seq).
	s := sim.New()
	w := sched.NewWFQ(rate, s.Now, weights)
	link := sched.NewLink(s, rate, w, buffer.NewUnlimited(nflows), nil)
	type key struct {
		flow int
		seq  uint64
	}
	depart := map[key]float64{}
	link.OnDepart = func(p *packet.Packet) { depart[key{p.Flow, p.Seq}] = s.Now() }
	seqs := make([]uint64, nflows)
	for _, a := range script {
		a := a
		p := &packet.Packet{Flow: a.flow, Size: a.size, Seq: seqs[a.flow]}
		seqs[a.flow]++
		s.At(a.at, func() {
			p.Arrived = s.Now()
			link.Receive(p)
		})
	}
	s.Run(0)

	// Brute-force fluid GPS reference: simulate per-flow fluid queues
	// served at φᵢ/Σφ_active · R between event times.
	gpsFinish := map[key]float64{}
	{
		type qpkt struct {
			k      key
			remain float64 // bits
		}
		queues := make([][]qpkt, nflows)
		phi := make([]float64, nflows)
		for i, wgt := range weights {
			phi[i] = wgt.BitsPerSecond()
		}
		seqs := make([]uint64, nflows)
		now := 0.0
		idx := 0
		r := rate.BitsPerSecond()
		for idx < len(script) || anyBacklog(queues) {
			// Advance fluid service until the next arrival.
			next := math.Inf(1)
			if idx < len(script) {
				next = script[idx].at
			}
			for now < next && anyBacklog(queues) {
				var sumPhi float64
				for i := range queues {
					if len(queues[i]) > 0 {
						sumPhi += phi[i]
					}
				}
				// Time until the first head-of-line packet empties.
				dt := next - now
				for i := range queues {
					if len(queues[i]) > 0 {
						need := queues[i][0].remain * sumPhi / (phi[i] * r)
						if need < dt {
							dt = need
						}
					}
				}
				for i := range queues {
					if len(queues[i]) == 0 {
						continue
					}
					queues[i][0].remain -= phi[i] / sumPhi * r * dt
					if queues[i][0].remain <= 1e-9 {
						gpsFinish[queues[i][0].k] = now + dt
						queues[i] = queues[i][1:]
					}
				}
				now += dt
			}
			if idx < len(script) {
				now = script[idx].at
				a := script[idx]
				queues[a.flow] = append(queues[a.flow], qpkt{
					k:      key{a.flow, seqs[a.flow]},
					remain: a.size.Bits(),
				})
				seqs[a.flow]++
				idx++
			}
		}
	}

	// PGPS bound: D_pgps ≤ D_gps + Lmax/R.
	lmaxTime := units.TransmissionTime(1500, rate)
	checked := 0
	for k, dp := range depart {
		dg, ok := gpsFinish[k]
		if !ok {
			t.Fatalf("GPS reference missing packet %v", k)
		}
		if dp > dg+lmaxTime+1e-9 {
			t.Errorf("packet %v: PGPS departure %v exceeds GPS %v + Lmax/R", k, dp, dg)
		}
		checked++
	}
	if checked != len(script) {
		t.Fatalf("checked %d of %d packets", checked, len(script))
	}
}

func anyBacklog[T any](queues [][]T) bool {
	for _, q := range queues {
		if len(q) > 0 {
			return true
		}
	}
	return false
}

// TestRequiredBufferLosslessPacketized validates equation (9) in the
// packet domain: six shaped Table 1 flows (the conformant set) on a
// buffer of exactly R·Σσ/(R−Σρ) plus one MTU per flow of packetization
// slack suffer zero loss under FIFO + thresholds.
func TestRequiredBufferLosslessPacketized(t *testing.T) {
	flows := experiment.Table1Flows()[:6] // the conformant rows
	specs := experiment.Specs(flows)
	need, err := core.RequiredBufferFIFO(specs, experiment.DefaultLinkRate)
	if err != nil {
		t.Fatal(err)
	}
	buf := need + units.Bytes(len(specs))*500
	res, err := experiment.Run(context.Background(), experiment.NewOptions(
		experiment.WithFlows(flows),
		experiment.WithScheme(experiment.FIFOThreshold),
		experiment.WithBuffer(buf),
		experiment.WithDuration(20),
		experiment.WithWarmup(1),
		experiment.WithSeed(3),
	))
	if err != nil {
		t.Fatal(err)
	}
	if res.ConformantLoss != 0 {
		t.Errorf("loss %v at the equation-(9) buffer %v, want 0", res.ConformantLoss, buf)
	}
	// Sanity: they also receive their rates (offered ≈ delivered).
	for i := range flows {
		if res.FlowThroughput[i].BitsPerSecond() < res.OfferedRate[i].BitsPerSecond()*0.999 {
			t.Errorf("flow %d delivered below offered", i)
		}
	}
}

// TestHybridMinimumBufferLossless validates equations (16)/(18) in the
// packet domain: the same six conformant flows, grouped as in §4.2 and
// run on the hybrid architecture at its computed minimum buffer (plus
// packetization slack), lose nothing.
func TestHybridMinimumBufferLossless(t *testing.T) {
	flows := experiment.Table1Flows()[:6]
	specs := experiment.Specs(flows)
	queueOf := []int{0, 0, 0, 1, 1, 1}
	groups, err := core.GroupFlows(specs, queueOf, 2)
	if err != nil {
		t.Fatal(err)
	}
	minBuf, err := core.HybridBufferTotal(experiment.DefaultLinkRate, groups)
	if err != nil {
		t.Fatal(err)
	}
	res, err := experiment.Run(context.Background(), experiment.NewOptions(
		experiment.WithFlows(flows),
		experiment.WithScheme(experiment.HybridSharing),
		experiment.WithBuffer(minBuf+units.Bytes(len(specs))*2*500),
		experiment.WithQueues(queueOf),
		experiment.WithDuration(20),
		experiment.WithWarmup(1),
		experiment.WithSeed(3),
	))
	if err != nil {
		t.Fatal(err)
	}
	if res.ConformantLoss != 0 {
		t.Errorf("hybrid loss %v at its minimum buffer %v, want 0", res.ConformantLoss, minBuf)
	}
}
