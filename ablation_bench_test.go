package bufqos_test

import (
	"context"
	"fmt"
	"testing"

	"bufqos/internal/core"
	"bufqos/internal/experiment"
	"bufqos/internal/packet"
	"bufqos/internal/sched"
	"bufqos/internal/units"
)

// Ablation benchmarks probe the design choices DESIGN.md calls out:
// headroom sizing, flow grouping, packet size, the Dynamic-Threshold
// and adaptive-sharing alternatives, and the RPQ middle ground. Each
// reports its comparison through b.ReportMetric.

// ablationRun goes through the deprecated Config shim on purpose: the
// ablations double as a compatibility check for pre-Options callers.
func ablationRun(b *testing.B, cfg experiment.Config) experiment.Result {
	b.Helper()
	cfg.Duration = 4
	cfg.Warmup = 0.5
	cfg.Seed = 11
	res, err := experiment.RunConfig(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkAblationHeadroom contrasts H = 0 against a generous headroom
// at the small buffer where the difference shows (cf. Figure 7).
func BenchmarkAblationHeadroom(b *testing.B) {
	var lossNoH, lossH float64
	for i := 0; i < b.N; i++ {
		base := experiment.Config{
			Flows:  experiment.Table1Flows(),
			Scheme: experiment.FIFOSharing,
			Buffer: units.KiloBytes(200),
		}
		noH := base
		noH.Headroom = 0
		lossNoH = ablationRun(b, noH).ConformantLoss
		withH := base
		withH.Headroom = units.KiloBytes(150)
		lossH = ablationRun(b, withH).ConformantLoss
	}
	b.ReportMetric(lossNoH, "loss@H0")
	b.ReportMetric(lossH, "loss@H150K")
}

// BenchmarkAblationGrouping compares the paper's by-class grouping, the
// exhaustive optimum, and a deliberately bad interleaved grouping on
// the analytic hybrid buffer requirement (eq. 19).
func BenchmarkAblationGrouping(b *testing.B) {
	specs := experiment.Specs(experiment.Table1Flows())
	r := experiment.DefaultLinkRate
	var paperKB, optKB, badKB float64
	for i := 0; i < b.N; i++ {
		for _, g := range []struct {
			name    string
			queueOf []int
			out     *float64
		}{
			{"paper", experiment.Table1QueueOf(), &paperKB},
			{"bad", []int{0, 1, 2, 0, 1, 2, 0, 1, 2}, &badKB},
		} {
			groups, err := core.GroupFlows(specs, g.queueOf, 3)
			if err != nil {
				b.Fatal(err)
			}
			total, err := core.HybridBufferTotal(r, groups)
			if err != nil {
				b.Fatal(err)
			}
			*g.out = total.KB()
		}
		best, err := core.OptimizeGroupingExhaustive(specs, 3)
		if err != nil {
			b.Fatal(err)
		}
		groups, err := core.GroupFlows(specs, best, 3)
		if err != nil {
			b.Fatal(err)
		}
		total, err := core.HybridBufferTotal(r, groups)
		if err != nil {
			b.Fatal(err)
		}
		optKB = total.KB()
	}
	b.ReportMetric(paperKB, "paper-KB")
	b.ReportMetric(optKB, "optimal-KB")
	b.ReportMetric(badKB, "interleaved-KB")
}

// BenchmarkAblationPacketSize checks the byte-granularity claim: the
// threshold scheme's protection is insensitive to packet size (one MTU
// of slack is all packetization costs).
func BenchmarkAblationPacketSize(b *testing.B) {
	var loss100, loss500, loss1500 float64
	for i := 0; i < b.N; i++ {
		for _, c := range []struct {
			size units.Bytes
			out  *float64
		}{
			{100, &loss100}, {500, &loss500}, {1500, &loss1500},
		} {
			cfg := experiment.Config{
				Flows:      experiment.Table1Flows(),
				Scheme:     experiment.FIFOThreshold,
				Buffer:     units.KiloBytes(500),
				PacketSize: c.size,
			}
			*c.out = ablationRun(b, cfg).ConformantLoss
		}
	}
	b.ReportMetric(loss100, "loss@100B")
	b.ReportMetric(loss500, "loss@500B")
	b.ReportMetric(loss1500, "loss@1500B")
}

// BenchmarkAblationDynamicThreshold compares Choudhury–Hahne dynamic
// thresholds [1] with the paper's sharing scheme at equal buffer.
func BenchmarkAblationDynamicThreshold(b *testing.B) {
	var dtLoss, shLoss, dtUtil, shUtil float64
	for i := 0; i < b.N; i++ {
		dt := ablationRun(b, experiment.Config{
			Flows:  experiment.Table1Flows(),
			Scheme: experiment.FIFODynamicThreshold,
			Buffer: units.MegaBytes(1),
		})
		dtLoss, dtUtil = dt.ConformantLoss, dt.Utilization
		sh := ablationRun(b, experiment.Config{
			Flows:    experiment.Table1Flows(),
			Scheme:   experiment.FIFOSharing,
			Buffer:   units.MegaBytes(1),
			Headroom: units.KiloBytes(250),
		})
		shLoss, shUtil = sh.ConformantLoss, sh.Utilization
	}
	b.ReportMetric(dtLoss, "DT-loss")
	b.ReportMetric(shLoss, "sharing-loss")
	b.ReportMetric(dtUtil, "DT-util")
	b.ReportMetric(shUtil, "sharing-util")
}

// BenchmarkAblationAdaptiveSharing quantifies the §5 adaptive policy:
// aggressive-flow throughput under plain vs adaptive sharing.
func BenchmarkAblationAdaptiveSharing(b *testing.B) {
	var aggPlain, aggAdaptive float64
	for i := 0; i < b.N; i++ {
		for _, c := range []struct {
			scheme experiment.Scheme
			out    *float64
		}{
			{experiment.FIFOSharing, &aggPlain},
			{experiment.FIFOAdaptiveSharing, &aggAdaptive},
		} {
			res := ablationRun(b, experiment.Config{
				Flows:    experiment.Table1Flows(),
				Scheme:   c.scheme,
				Buffer:   units.MegaBytes(3),
				Headroom: units.KiloBytes(500),
			})
			*c.out = res.FlowThroughput[6].Mbits() +
				res.FlowThroughput[7].Mbits() + res.FlowThroughput[8].Mbits()
		}
	}
	b.ReportMetric(aggPlain, "aggr-mbps-sharing")
	b.ReportMetric(aggAdaptive, "aggr-mbps-adaptive")
}

// BenchmarkAblationRPQ compares the worst-case delay of a tight-class
// flow under RPQ+thresholds vs FIFO+thresholds.
func BenchmarkAblationRPQ(b *testing.B) {
	var fifoDelay, rpqDelay float64
	for i := 0; i < b.N; i++ {
		for _, c := range []struct {
			scheme experiment.Scheme
			out    *float64
		}{
			{experiment.FIFOThreshold, &fifoDelay},
			{experiment.RPQThreshold, &rpqDelay},
		} {
			cfg := experiment.Config{
				Flows:       experiment.Table1Flows(),
				Scheme:      c.scheme,
				Buffer:      units.MegaBytes(2),
				TrackDelays: true,
			}
			res := ablationRun(b, cfg)
			// Relative worst delay of a tight-class flow (flow 3,
			// class 1) against a loose-class flow (flow 6, class 3):
			// below 1 means the scheduler is honoring classes.
			*c.out = res.FlowMaxDelay[3] / (res.FlowMaxDelay[6] + 1e-9)
		}
	}
	b.ReportMetric(fifoDelay, "fifo-rel-delay")
	b.ReportMetric(rpqDelay, "rpq-rel-delay")
}

// BenchmarkAblationAllSchedulers runs the Table 1 workload at a fixed
// buffer under every scheduler family (paired with fixed thresholds)
// and reports utilization and conformant loss — the scheduling-vs-
// buffer-management design space in one table.
func BenchmarkAblationAllSchedulers(b *testing.B) {
	schemes := []experiment.Scheme{
		experiment.FIFOThreshold,
		experiment.WFQThreshold,
		experiment.RPQThreshold,
		experiment.DRRThreshold,
		experiment.EDFThreshold,
		experiment.VCThreshold,
	}
	for _, s := range schemes {
		s := s
		b.Run(s.String(), func(b *testing.B) {
			var util, loss float64
			for i := 0; i < b.N; i++ {
				res := ablationRun(b, experiment.Config{
					Flows:  experiment.Table1Flows(),
					Scheme: s,
					Buffer: units.MegaBytes(1),
				})
				util, loss = res.Utilization, res.ConformantLoss
			}
			b.ReportMetric(util, "util")
			b.ReportMetric(loss, "conf-loss")
		})
	}
}

// BenchmarkAblationSchedulerScaling measures WFQ per-packet cost as the
// flow count grows — the log N term the paper engineers away. Compare
// the sub-benchmark ns/op across flow counts against the flat cost of
// BenchmarkAdmitFixedThreshold.
func BenchmarkAblationSchedulerScaling(b *testing.B) {
	for _, n := range []int{16, 256, 4096} {
		b.Run(fmt.Sprintf("flows-%d", n), func(b *testing.B) {
			weights := make([]units.Rate, n)
			for i := range weights {
				weights[i] = units.Mbps
			}
			now := 0.0
			w := sched.NewWFQ(units.Rate(float64(n)*2e6), func() float64 { return now }, weights)
			pkts := make([]*packet.Packet, n)
			for i := range pkts {
				pkts[i] = &packet.Packet{Flow: i, Size: 500}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.Enqueue(pkts[i%n])
				now += 1e-7
				if w.Len() > n {
					w.Dequeue()
				}
			}
		})
	}
}

// BenchmarkChurn runs the dynamic-population experiment: Poisson flow
// arrivals through admission control with threshold recomputation. It
// reports blocking probability and conformant loss — the guarantee
// must survive population changes.
func BenchmarkChurn(b *testing.B) {
	var blocking, loss, util float64
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunChurn(context.Background(), experiment.ChurnConfig{
			Templates: []experiment.FlowConfig{{
				Spec: packet.FlowSpec{
					PeakRate:   units.MbitsPerSecond(16),
					TokenRate:  units.MbitsPerSecond(2),
					BucketSize: units.KiloBytes(30),
				},
				AvgRate:   units.MbitsPerSecond(2),
				MeanBurst: units.KiloBytes(30),
			}},
			ArrivalRate: 3,
			MeanHold:    6,
			MaxFlows:    32,
			Buffer:      units.MegaBytes(2),
			Duration:    30,
			Warmup:      3,
			Seed:        int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		blocking, loss, util = res.BlockingProbability, res.ConformantLoss, res.Utilization
	}
	b.ReportMetric(blocking, "blocking")
	b.ReportMetric(loss, "conf-loss")
	b.ReportMetric(util, "util")
}
