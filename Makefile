# Tier-1 verify path. CI and pre-commit both run `make verify`:
# build + vet + full tests, then a short-mode race check of the
# parallel sweep worker pool (including cancellation and shared-
# registry metrics aggregation) so it stays race-clean.
.PHONY: verify build vet test race lint bench bench-json bench-smoke topo-smoke fuzz-smoke fuzz-nightly docs-check

verify: build vet test race

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

# Style gate: gofmt must produce no diff, and vet must be clean. CI runs
# this alongside `make verify`.
lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; \
		gofmt -d $$unformatted; exit 1; \
	fi
	go vet ./...

race:
	go test -race -short -run 'TestParallel|TestPool|TestSweepCancel|TestMetricsDeterministic' ./internal/experiment
	go test -race -run 'TestShardEquivalence|TestRunMergesDeterministically' ./internal/topology ./internal/shard

# Record a benchmark baseline, e.g. `make bench > results/bench-$(date +%F).txt`.
bench:
	go test -bench . -benchmem

# Regenerate the committed sharded-execution benchmark: one
# 1000-link / 100k-flow scenario swept over -shards 1/2/4/8, with
# bit-identity between all shard counts asserted. The JSON notes the
# host core count — compare speedups only across equal-core hosts.
bench-json:
	go run ./cmd/qnet -gen 'random?links=1000,flows=100000,seed=1' \
		-duration 0.1 -bench-json BENCH_topology.json

# One fast iteration of the headline benchmarks: catches benchmarks
# that no longer compile or crash without paying for full measurement.
# CI runs this on every push.
bench-smoke:
	go test -run '^$$' -bench 'BenchmarkTable1Workload$$|BenchmarkEndToEndSimulation' -benchtime 1x .

# Run every shipped topology scenario short with -check: fails if any
# admitted conformant flow loses conformant traffic at any hop or
# misses its reserved throughput. CI runs this on every push.
topo-smoke:
	@set -e; for f in topologies/*.json; do \
		echo "== $$f"; \
		go run ./cmd/qnet -topology $$f -duration 5 -runs 2 -check; \
	done

# Bounded property-fuzzing campaign: 50 seeded scenarios, 2 s horizon,
# every invariant oracle. Fails (and writes shrunk reproducers to
# testdata/repros/) on any violation. CI runs this on every push; the
# scheduled nightly workflow runs fuzz-nightly instead.
fuzz-smoke:
	go run ./cmd/qfuzz -n 50 -duration 2s -seed 1 -out testdata/repros

# The long campaign for the nightly schedule: more cases and a second
# sweep with deliberately weakened thresholds that MUST fail (the
# necessity direction of Proposition 1): its reproducers land in a
# throwaway directory and the expected non-zero exit is inverted.
fuzz-nightly:
	go run ./cmd/qfuzz -n 500 -duration 2s -seed 1 -out testdata/repros
	@echo "== broken-threshold sweep (must fail)"; \
	if go run ./cmd/qfuzz -n 10 -duration 2s -seed 1 -threshold-scale 0.9 \
		-out /tmp/bufqos-broken-repros >/dev/null; then \
		echo "qfuzz -threshold-scale 0.9 did not fail: necessity lost"; exit 1; \
	else echo "weakened thresholds correctly caught"; fi

# Documentation drift gate: the README scheme catalogue and CLI table
# and the EXPERIMENTS.md oracle catalogue are pinned to the code by
# tests; this target runs exactly those.
docs-check:
	go test -run 'TestReadmeSchemeCatalogue|TestReadmeCLITable|TestExperimentsOracleCatalogue' .
