# Tier-1 verify path. CI and pre-commit both run `make verify`:
# build + vet + full tests, then a short-mode race check of the
# parallel sweep worker pool (including cancellation and shared-
# registry metrics aggregation) so it stays race-clean.
.PHONY: verify build vet test race lint bench bench-json bench-smoke topo-smoke tcp-smoke fuzz-smoke fuzz-nightly docs-check qosd-smoke bench-qosd comp-smoke sizing-smoke

verify: build vet test race

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

# Style gate: gofmt must produce no diff, and vet must be clean. CI runs
# this alongside `make verify`.
lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; \
		gofmt -d $$unformatted; exit 1; \
	fi
	go vet ./...

race:
	go test -race -short -run 'TestParallel|TestPool|TestSweepCancel|TestMetricsDeterministic' ./internal/experiment
	go test -race -run 'TestShardEquivalence|TestRunMergesDeterministically' ./internal/topology ./internal/shard
	go test -race ./internal/qosd ./internal/core
	go test -race ./internal/online
	go test -race -run 'TestCompeteDeterministicAcrossWorkers' ./internal/validate
	go test -race -short ./internal/sizing

# Record a benchmark baseline, e.g. `make bench > results/bench-$(date +%F).txt`.
bench:
	go test -bench . -benchmem

# Regenerate the committed sharded-execution benchmark: one
# 1000-link / 100k-flow scenario swept over -shards 1/2/4/8, with
# bit-identity between all shard counts asserted. The JSON notes the
# host core count — compare speedups only across equal-core hosts.
bench-json:
	go run ./cmd/qnet -gen 'random?links=1000,flows=100000,seed=1' \
		-duration 0.1 -bench-json BENCH_topology.json

# One fast iteration of the headline benchmarks: catches benchmarks
# that no longer compile or crash without paying for full measurement.
# CI runs this on every push.
bench-smoke:
	go test -run '^$$' -bench 'BenchmarkTable1Workload$$|BenchmarkEndToEndSimulation' -benchtime 1x .

# Run every shipped topology scenario short with -check: fails if any
# admitted conformant flow loses conformant traffic at any hop or
# misses its reserved throughput. CI runs this on every push.
topo-smoke:
	@set -e; for f in topologies/*.json; do \
		echo "== $$f"; \
		go run ./cmd/qnet -topology $$f -duration 5 -runs 2 -check; \
	done

# Closed-loop determinism gate: the gfr3 TCP scenario (feedback data
# plane: ACKs and drop notifications riding reverse links) run with
# -check at -shards 1 and -shards 4 must produce byte-identical output.
# CI runs this on every push.
tcp-smoke:
	@set -e; \
	go build -o /tmp/bufqos-qnet ./cmd/qnet; \
	/tmp/bufqos-qnet -topology topologies/gfr3.json -duration 5 -check \
		-shards 1 > /tmp/bufqos-gfr3-s1.txt; \
	/tmp/bufqos-qnet -topology topologies/gfr3.json -duration 5 -check \
		-shards 4 > /tmp/bufqos-gfr3-s4.txt; \
	c1=$$(sha256sum /tmp/bufqos-gfr3-s1.txt | cut -d' ' -f1); \
	c4=$$(sha256sum /tmp/bufqos-gfr3-s4.txt | cut -d' ' -f1); \
	if [ "$$c1" != "$$c4" ]; then \
		echo "tcp-smoke: shard 1 and shard 4 outputs diverge"; \
		diff /tmp/bufqos-gfr3-s1.txt /tmp/bufqos-gfr3-s4.txt; exit 1; \
	fi; \
	echo "tcp-smoke: ok (sha256 $$c1)"

# Boot the admission daemon on a generated topology, drive it with a
# short deterministic load run (two passes must produce bit-identical
# decision checksums, and the snapshot must round-trip through
# /v1/restore byte-identically), then assert a clean SIGTERM drain.
# CI runs this on every push.
qosd-smoke:
	@set -e; \
	go build -o /tmp/bufqos-qosd ./cmd/qosd; \
	go build -o /tmp/bufqos-qload ./cmd/qload; \
	rm -f /tmp/bufqos-qosd.addr; \
	/tmp/bufqos-qosd -gen 'random?links=100,flows=1000,seed=1' \
		-addr 127.0.0.1:0 -addr-file /tmp/bufqos-qosd.addr & pid=$$!; \
	for i in $$(seq 100); do [ -s /tmp/bufqos-qosd.addr ] && break; sleep 0.1; done; \
	[ -s /tmp/bufqos-qosd.addr ] || { echo "qosd never bound"; kill $$pid 2>/dev/null; exit 1; }; \
	/tmp/bufqos-qload -addr $$(cat /tmp/bufqos-qosd.addr) -clients 4 -ops 20000 \
		-seed 1 -batch 256 -passes 2 -check-snapshot \
		|| { kill $$pid 2>/dev/null; exit 1; }; \
	kill -TERM $$pid; wait $$pid; \
	echo "qosd-smoke: ok (clean drain)"

# Regenerate the committed control-plane benchmark: qload vs qosd on a
# generated 1000-link topology, two passes asserted bit-identical, the
# snapshot round-tripped, decisions/sec + latency percentiles recorded.
bench-qosd:
	@set -e; \
	go build -o /tmp/bufqos-qosd ./cmd/qosd; \
	go build -o /tmp/bufqos-qload ./cmd/qload; \
	rm -f /tmp/bufqos-qosd.addr; \
	/tmp/bufqos-qosd -gen 'random?links=1000,flows=10000,seed=1' \
		-addr 127.0.0.1:0 -addr-file /tmp/bufqos-qosd.addr & pid=$$!; \
	for i in $$(seq 100); do [ -s /tmp/bufqos-qosd.addr ] && break; sleep 0.1; done; \
	/tmp/bufqos-qload -addr $$(cat /tmp/bufqos-qosd.addr) -clients 8 -ops 1000000 \
		-seed 1 -batch 1024 -join-frac 0.90 -leave-frac 0.06 -max-active 20000 \
		-passes 2 -check-snapshot -out BENCH_qosd.json \
		|| { kill $$pid 2>/dev/null; exit 1; }; \
	kill -TERM $$pid; wait $$pid

# Bounded property-fuzzing campaign: 50 seeded scenarios, 2 s horizon,
# every invariant oracle. Fails (and writes shrunk reproducers to
# testdata/repros/) on any violation. CI runs this on every push; the
# scheduled nightly workflow runs fuzz-nightly instead.
fuzz-smoke:
	go run ./cmd/qfuzz -n 50 -duration 2s -seed 1 -out testdata/repros

# The long campaign for the nightly schedule: more cases and a second
# sweep with deliberately weakened thresholds that MUST fail (the
# necessity direction of Proposition 1): its reproducers land in a
# throwaway directory and the expected non-zero exit is inverted.
fuzz-nightly:
	go run ./cmd/qfuzz -n 500 -duration 2s -seed 1 -out testdata/repros
	@echo "== broken-threshold sweep (must fail)"; \
	if go run ./cmd/qfuzz -n 10 -duration 2s -seed 1 -threshold-scale 0.9 \
		-out /tmp/bufqos-broken-repros >/dev/null; then \
		echo "qfuzz -threshold-scale 0.9 did not fail: necessity lost"; exit 1; \
	else echo "weakened thresholds correctly caught"; fi

# Competitive-analysis gate: the default qcomp sweep must hold every
# proven bound (-check exits 1 otherwise), and two passes at different
# worker counts must produce byte-identical reports. CI runs this on
# every push; the committed BENCH_competitive.json is the same sweep.
comp-smoke:
	@set -e; \
	go build -o /tmp/bufqos-qcomp ./cmd/qcomp; \
	/tmp/bufqos-qcomp -check -workers 1 -out /tmp/bufqos-comp-1.json; \
	/tmp/bufqos-qcomp -check -workers 4 -out /tmp/bufqos-comp-4.json; \
	c1=$$(sha256sum /tmp/bufqos-comp-1.json | cut -d' ' -f1); \
	c4=$$(sha256sum /tmp/bufqos-comp-4.json | cut -d' ' -f1); \
	if [ "$$c1" != "$$c4" ]; then \
		echo "comp-smoke: worker-1 and worker-4 reports diverge"; \
		diff /tmp/bufqos-comp-1.json /tmp/bufqos-comp-4.json; exit 1; \
	fi; \
	if ! cmp -s /tmp/bufqos-comp-1.json BENCH_competitive.json; then \
		echo "comp-smoke: committed BENCH_competitive.json is stale"; \
		echo "regenerate with: go run ./cmd/qcomp -out BENCH_competitive.json -check"; \
		exit 1; \
	fi; \
	echo "comp-smoke: ok (sha256 $$c1)"

# Buffer-sizing gate: the default qsize sweep at worker counts 1 and 4
# must produce byte-identical reports, the √n utilization floor must
# hold (-check exits 1 otherwise), and the committed BENCH_sizing.json
# must match a fresh run. CI runs this on every push.
sizing-smoke:
	@set -e; \
	go build -o /tmp/bufqos-qsize ./cmd/qsize; \
	/tmp/bufqos-qsize -check -workers 1 -out /tmp/bufqos-sizing-1.json >/dev/null; \
	/tmp/bufqos-qsize -check -workers 4 -out /tmp/bufqos-sizing-4.json >/dev/null; \
	c1=$$(sha256sum /tmp/bufqos-sizing-1.json | cut -d' ' -f1); \
	c4=$$(sha256sum /tmp/bufqos-sizing-4.json | cut -d' ' -f1); \
	if [ "$$c1" != "$$c4" ]; then \
		echo "sizing-smoke: worker-1 and worker-4 reports diverge"; \
		diff /tmp/bufqos-sizing-1.json /tmp/bufqos-sizing-4.json; exit 1; \
	fi; \
	if ! cmp -s /tmp/bufqos-sizing-1.json BENCH_sizing.json; then \
		echo "sizing-smoke: committed BENCH_sizing.json is stale"; \
		echo "regenerate with: go run ./cmd/qsize -out BENCH_sizing.json -check"; \
		echo "then refresh the EXPERIMENTS.md tables: go run ./cmd/qsize -md BENCH_sizing.json"; \
		exit 1; \
	fi; \
	echo "sizing-smoke: ok (sha256 $$c1)"

# Documentation drift gate: the README scheme catalogue and CLI table,
# the EXPERIMENTS.md oracle catalogue, and the EXPERIMENTS.md
# buffer-sizing tables (pinned to BENCH_sizing.json) are tied to the
# code by tests; this target runs exactly those.
docs-check:
	go test -run 'TestReadmeSchemeCatalogue|TestReadmeCLITable|TestExperimentsOracleCatalogue|TestExperimentsSizingTable' .
