# Tier-1 verify path. CI and pre-commit both run `make verify`:
# build + vet + full tests, then a short-mode race check of the
# parallel sweep worker pool so it stays race-clean.
.PHONY: verify build vet test race bench

verify: build vet test race

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race -short -run TestParallel ./internal/experiment

# Record a benchmark baseline, e.g. `make bench > results/bench-$(date +%F).txt`.
bench:
	go test -bench . -benchmem
