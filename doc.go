// Package bufqos reproduces "Scalable QoS Provision Through Buffer
// Management" (Guérin, Kamat, Peris, Rajan — SIGCOMM 1998): rate
// guarantees for flows multiplexed into a FIFO queue using only O(1)
// per-packet buffer management, the buffer-sharing extension, and the
// hybrid k-queue architecture.
//
// The implementation lives under internal/:
//
//   - internal/core      — thresholds, admission regions, hybrid allocation
//   - internal/buffer    — tail-drop, fixed thresholds, sharing, DT, RED
//   - internal/sched     — FIFO, exact-virtual-time WFQ, hybrid, link server
//   - internal/scheme    — the scheme registry: spec strings → (manager,
//     scheduler) builders shared by experiments, the network, and CLIs
//   - internal/source    — ON-OFF sources, leaky-bucket shaper, meter
//   - internal/fluid     — fluid-model verification of Propositions 1-2
//   - internal/experiment — Table 1/2 workloads and Figures 1-13 runners
//   - internal/metrics   — allocation-conscious counters/gauges/histograms
//   - internal/sim, units, packet, stats, trace — substrate
//
// The experiment package is driven through a single Options struct built
// with functional options and a context-aware entry point:
//
//	fig, err := experiment.Figure1(ctx, experiment.NewOptions(
//	    experiment.WithRuns(5),
//	    experiment.WithMetrics(reg),      // nil registry = zero-cost
//	    experiment.WithProgress(onTick),  // runs done/total + ETA
//	))
//
// Cancelling ctx stops in-flight simulations promptly and returns the
// partial figure. Schemes are selected by registry spec strings —
// experiment.WithSchemeSpec("wfq+sharing"),
// WithSchemeSpec("hybrid:3+sharing"), or a parameterized variant like
// "fifo+red?min=0.2,max=0.8" — and the deprecated Scheme enum plus the
// Config/RunOpts shims keep pre-Options callers compiling (each enum
// value maps onto its registry entry, producing identical runs).
//
// Executables: cmd/qsim (regenerate every figure; -metrics, -pprof and
// -progress expose run telemetry), cmd/qosplan (closed-form analysis).
// Runnable walkthroughs are in examples/. The benchmarks in
// bench_test.go regenerate each table and figure at reduced scale; see
// EXPERIMENTS.md for paper-vs-measured results.
package bufqos
