// Package bufqos reproduces "Scalable QoS Provision Through Buffer
// Management" (Guérin, Kamat, Peris, Rajan — SIGCOMM 1998): rate
// guarantees for flows multiplexed into a FIFO queue using only O(1)
// per-packet buffer management, the buffer-sharing extension, and the
// hybrid k-queue architecture.
//
// The implementation lives under internal/ (see ARCHITECTURE.md for
// the full map and data flow):
//
//   - internal/core      — thresholds, admission regions, hybrid allocation
//   - internal/buffer    — tail-drop, fixed thresholds, sharing, DT, RED
//   - internal/sched     — FIFO, exact-virtual-time WFQ, hybrid, link server
//   - internal/scheme    — the scheme registry: spec strings → (manager,
//     scheduler) builders shared by experiments, the network, and CLIs
//   - internal/source    — ON-OFF sources, leaky-bucket shaper, meter
//   - internal/fluid     — fluid-model verification of Propositions 1–2
//   - internal/topology  — declarative multi-hop scenarios: links, routed
//     flows, event timelines, per-hop admission and verification
//   - internal/validate  — property-based fuzzing: seeded scenario
//     generation, invariant oracles, failure shrinking
//   - internal/online    — competitive analysis: online policies vs the
//     exact offline optimum
//   - internal/sizing    — buffer-sizing sweeps: rule × scheme ×
//     population grids (closed-loop TCP to 10⁶ flows) over one bottleneck
//   - internal/experiment — Table 1/2 workloads and Figures 1–13 runners
//   - internal/metrics   — allocation-conscious counters/gauges/histograms
//   - internal/report    — assertions and figure/table rendering
//   - internal/sim, units, packet, stats, trace — substrate
//
// The experiment package is driven through a single Options struct built
// with functional options and a context-aware entry point:
//
//	fig, err := experiment.Figure1(ctx, experiment.NewOptions(
//	    experiment.WithRuns(5),
//	    experiment.WithMetrics(reg),      // nil registry = zero-cost
//	    experiment.WithProgress(onTick),  // runs done/total + ETA
//	))
//
// Cancelling ctx stops in-flight simulations promptly and returns the
// partial figure. Schemes are selected by registry spec strings —
// experiment.WithSchemeSpec("wfq+sharing"),
// WithSchemeSpec("hybrid:3+sharing"), or a parameterized variant like
// "fifo+red?min=0.2,max=0.8". (The deprecated Scheme enum and the
// pre-Options Config/RunOpts shims in internal/experiment/legacy.go
// still compile but should not appear in new code.)
//
// Executables: cmd/qsim (regenerate every figure), cmd/qtrace
// (per-packet event traces), cmd/qcheck (single-link invariant
// checks), cmd/qnet (declarative multi-hop scenarios), cmd/qfuzz
// (property-based invariant fuzzing), cmd/qcomp (competitive-analysis
// sweeps), cmd/qsize (buffer-sizing sweeps), cmd/qosplan (closed-form
// analysis), cmd/qosd (the admission-control daemon), cmd/qload (its
// load generator); the README's CLI table summarizes flags and use
// cases.
// Runnable walkthroughs are in examples/. The benchmarks in
// bench_test.go regenerate each table and figure at reduced scale; see
// EXPERIMENTS.md for paper-vs-measured results.
package bufqos
