package bufqos_test

import (
	"context"
	"testing"

	"bufqos/internal/buffer"
	"bufqos/internal/core"
	"bufqos/internal/experiment"
	"bufqos/internal/packet"
	"bufqos/internal/sched"
	"bufqos/internal/sim"
	"bufqos/internal/source"
	"bufqos/internal/stats"
	"bufqos/internal/units"
)

// Long-horizon stress tests, skipped under -short. They catch slow
// drift (accounting leaks, virtual-time float growth, occupancy
// desync) that short unit tests cannot.

func TestStressHundredFlowsLongRun(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	// 100 flows on a 480 Mb/s link for 60 simulated seconds under the
	// threshold scheme; invariants checked throughout via manager
	// accounting and final conservation.
	const nflows = 100
	linkRate := units.Rate(480e6)
	bufSize := units.MegaBytes(4)

	var flows []experiment.FlowConfig
	for i := 0; i < nflows; i++ {
		tok := 0.5 + float64(i%8)*0.5 // 0.5..4 Mb/s
		conf := experiment.Conformant
		avg := tok
		burst := 20.0
		if i%5 == 4 {
			conf = experiment.Aggressive
			avg = tok * 4
			burst = 100
		}
		flows = append(flows, experiment.FlowConfig{
			Spec: packet.FlowSpec{
				PeakRate:   units.MbitsPerSecond(16),
				TokenRate:  units.MbitsPerSecond(tok),
				BucketSize: units.KiloBytes(20),
			},
			AvgRate:     units.MbitsPerSecond(avg),
			MeanBurst:   units.KiloBytes(burst),
			Conformance: conf,
		})
	}
	res, err := experiment.Run(context.Background(), experiment.NewOptions(
		experiment.WithFlows(flows),
		experiment.WithScheme(experiment.FIFOThreshold),
		experiment.WithLinkRate(linkRate),
		experiment.WithBuffer(bufSize),
		experiment.WithDuration(60),
		experiment.WithWarmup(5),
		experiment.WithSeed(1),
	))
	if err != nil {
		t.Fatal(err)
	}
	if res.Utilization <= 0.5 || res.Utilization > 1.001 {
		t.Errorf("utilization %v out of range", res.Utilization)
	}
	if res.ConformantLoss > 0.001 {
		t.Errorf("conformant loss %v at amply provisioned 100-flow scale", res.ConformantLoss)
	}
	// Every conformant flow individually delivers what it offered
	// (zero loss): the per-flow rate guarantee. The offered rate itself
	// fluctuates with the ON-OFF realization, so compare against the
	// measured offer, not the nominal reservation.
	for i, f := range flows {
		if f.Conformance != experiment.Conformant {
			continue
		}
		got := res.FlowThroughput[i].BitsPerSecond()
		offered := res.OfferedRate[i].BitsPerSecond()
		if got < offered*0.97 {
			t.Errorf("flow %d delivered %.3g of offered %.3g", i, got, offered)
		}
	}
}

func TestStressWFQVirtualTimeLongRun(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	// 200 simulated seconds of bursty on/off traffic through WFQ: the
	// idle-rebase must keep virtual time bounded and occupancy exact.
	s := sim.New()
	rate := units.MbitsPerSecond(48)
	weights := make([]units.Rate, 20)
	for i := range weights {
		weights[i] = units.MbitsPerSecond(1 + float64(i%4))
	}
	w := sched.NewWFQ(rate, s.Now, weights)
	mgr := buffer.NewTailDrop(units.MegaBytes(1), len(weights))
	col := stats.NewCollector(len(weights), 0)
	link := sched.NewLink(s, rate, w, mgr, col)
	for i := range weights {
		src := source.NewOnOff(s, sim.NewRand(int64(i+1)), source.OnOffConfig{
			Flow: i, PacketSize: 500,
			PeakRate:  units.MbitsPerSecond(16),
			AvgRate:   units.MbitsPerSecond(1.5),
			MeanBurst: units.KiloBytes(40),
		}, link)
		src.Start()
	}
	s.RunUntil(200)
	// Occupancy accounting must balance to the queued backlog plus the
	// packet in service.
	diff := mgr.Total() - w.Backlog()
	if diff != 0 && diff != 500 {
		t.Errorf("occupancy %v vs scheduler backlog %v (diff %v, want 0 or one packet)",
			mgr.Total(), w.Backlog(), diff)
	}
	// Virtual time stays finite and sane (rebased on idle periods).
	if v := w.VirtualTime(); v < 0 || v > 1e9 {
		t.Errorf("virtual time %v unbounded", v)
	}
	// Conservation per flow.
	for i := 0; i < len(weights); i++ {
		f := col.Flow(i)
		inFlight := f.Offered.Total().Packets - f.Departed.Total().Packets - f.Dropped.Total().Packets
		if inFlight < 0 || inFlight > int64(w.FlowBacklog(i))+1 {
			t.Errorf("flow %d conservation: %d unaccounted packets", i, inFlight)
		}
	}
}

func TestStressSharingInvariantLongRun(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	// The sharing pools must conserve space over millions of operations
	// driven by the real simulator (not just the quick-check harness).
	flows := experiment.Table1Flows()
	specs := experiment.Specs(flows)
	th, err := core.Thresholds(specs, experiment.DefaultLinkRate, units.MegaBytes(1))
	if err != nil {
		t.Fatal(err)
	}
	mgr := buffer.NewSharing(units.MegaBytes(1), th, units.KiloBytes(300))
	s := sim.New()
	link := sched.NewLink(s, experiment.DefaultLinkRate, sched.NewFIFO(), mgr, nil)
	for i, f := range flows {
		var sink source.Sink = link
		if f.Regulated() {
			sink = source.NewShaper(s, f.Spec, link)
		}
		src := source.NewOnOff(s, sim.NewRand(int64(i+7)), source.OnOffConfig{
			Flow: i, PacketSize: 500,
			PeakRate: f.Spec.PeakRate, AvgRate: f.AvgRate, MeanBurst: f.MeanBurst,
		}, sink)
		src.Start()
	}
	// Check the conservation invariant at 1000 checkpoints.
	for i := 1; i <= 1000; i++ {
		s.RunUntil(float64(i) * 0.1)
		free := mgr.Holes() + mgr.Headroom()
		if free+mgr.Total() != mgr.Capacity() {
			t.Fatalf("space leak at t=%v: holes+headroom=%v occupied=%v capacity=%v",
				s.Now(), free, mgr.Total(), mgr.Capacity())
		}
	}
}
