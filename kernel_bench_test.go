package bufqos_test

import (
	"testing"

	"bufqos/internal/buffer"
	"bufqos/internal/core"
	"bufqos/internal/experiment"
	"bufqos/internal/fluid"
	"bufqos/internal/packet"
	"bufqos/internal/sim"
	"bufqos/internal/source"
	"bufqos/internal/units"
)

// Micro-benchmarks of the substrate, for profiling the simulator
// itself (the figure benchmarks measure the science; these measure the
// machine).

// BenchmarkSimKernel measures raw event scheduling + dispatch. The
// arena-backed kernel must report 0 allocs/op here: the event payload
// is recycled through the free-list, not heap-allocated per call.
func BenchmarkSimKernel(b *testing.B) {
	s := sim.New()
	var next func()
	i := 0
	next = func() {
		i++
		if i < b.N {
			s.After(1e-6, next)
		}
	}
	s.After(0, next)
	b.ReportAllocs()
	b.ResetTimer()
	s.Run(uint64(b.N) + 10)
}

// BenchmarkSimKernelCancel measures the cancel/reschedule churn pattern
// (what shapers and churn experiments do per packet): also 0 allocs/op,
// and the eager heap removal keeps the queue from accumulating corpses.
func BenchmarkSimKernelCancel(b *testing.B) {
	s := sim.New()
	fn := func() {}
	e := s.At(1e18, fn)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Cancel()
		e = s.At(1e18, fn)
	}
	if s.Pending() != 1 {
		b.Fatalf("eager cancel left %d events queued, want 1", s.Pending())
	}
}

// BenchmarkSimKernelDeepQueue measures heap behaviour with many pending
// events.
func BenchmarkSimKernelDeepQueue(b *testing.B) {
	s := sim.New()
	for i := 0; i < 10000; i++ {
		s.At(1e6+float64(i), func() {})
	}
	count := 0
	var next func()
	next = func() {
		count++
		if count < b.N {
			s.After(1e-6, next)
		}
	}
	s.After(0, next)
	b.ReportAllocs()
	b.ResetTimer()
	for count < b.N && s.Step() {
	}
}

// BenchmarkOnOffSource measures packet generation throughput.
func BenchmarkOnOffSource(b *testing.B) {
	s := sim.New()
	n := 0
	src := source.NewOnOff(s, sim.NewRand(1), source.OnOffConfig{
		Flow: 0, PacketSize: 500,
		PeakRate:  units.MbitsPerSecond(40),
		AvgRate:   units.MbitsPerSecond(16),
		MeanBurst: units.KiloBytes(250),
	}, source.SinkFunc(func(*packet.Packet) { n++ }))
	src.Start()
	b.ResetTimer()
	for n < b.N && s.Step() {
	}
}

// BenchmarkShaper measures the leaky-bucket regulator's per-packet
// cost under sustained oversubscription.
func BenchmarkShaper(b *testing.B) {
	s := sim.New()
	n := 0
	spec := packet.FlowSpec{TokenRate: units.MbitsPerSecond(8), BucketSize: units.KiloBytes(50)}
	sh := source.NewShaper(s, spec, source.SinkFunc(func(*packet.Packet) { n++ }))
	src := source.NewCBR(s, 0, 500, units.MbitsPerSecond(16), sh)
	src.Start()
	b.ResetTimer()
	for n < b.N && s.Step() {
	}
}

// BenchmarkFluidEngine measures the discretized fluid model.
func BenchmarkFluidEngine(b *testing.B) {
	e := fluid.NewEngine(48e6, []float64{1.33e6, 6.67e6}, 1e-4)
	e.SetGreedy(1)
	rates := func(t float64) []float64 { return []float64{8e6, 0} }
	b.ResetTimer()
	e.Run(b.N, rates)
}

// BenchmarkThresholdComputation measures the admission-time math for
// the full Table 2 workload.
func BenchmarkThresholdComputation(b *testing.B) {
	specs := experiment.Specs(experiment.Table2Flows())
	for i := 0; i < b.N; i++ {
		if _, err := core.Thresholds(specs, experiment.DefaultLinkRate, units.MegaBytes(2)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGroupingDP measures the scalable grouping optimizer at 100
// flows.
func BenchmarkGroupingDP(b *testing.B) {
	var specs []packet.FlowSpec
	for i := 0; i < 100; i++ {
		specs = append(specs, packet.FlowSpec{
			TokenRate:  units.MbitsPerSecond(0.3 + float64(i%7)*0.4),
			BucketSize: units.KiloBytes(float64(10 + i%50)),
		})
	}
	for i := 0; i < b.N; i++ {
		if _, err := core.OptimizeGroupingDP(specs, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAdmitDynamicThreshold and BenchmarkAdmitRED complete the
// per-packet-cost comparison across all implemented managers.
func BenchmarkAdmitDynamicThreshold(b *testing.B) {
	m := buffer.NewDynamicThreshold(units.MegaBytes(1), 9, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m.Admit(i%9, 500) {
			m.Release(i%9, 500)
		}
	}
}

func BenchmarkAdmitRED(b *testing.B) {
	m := buffer.NewRED(units.MegaBytes(1), 9, units.KiloBytes(250), units.KiloBytes(750), 0.1, sim.NewRand(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m.Admit(i%9, 500) {
			m.Release(i%9, 500)
		}
	}
}
